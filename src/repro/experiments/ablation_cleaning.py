"""Cleaning-design ablations (Section 3.3 design choices).

Two studies the paper motivates but does not plot:

* **Token count** (Figure 7 discussion): the same inspection ratio served
  by 1, 2, 4 or 8 parallel tokens — the aggregate cleaning work is fixed,
  so update I/O should stay flat while garbage becomes more uniformly
  distributed (shorter worst-case time since a leaf's last visit).
* **Structure policies**: R* split vs. Guttman quadratic split, and forced
  reinsertion on/off, measuring both update and search I/O on the RUM-tree
  — justifying the default R* insertion machinery.
"""

from __future__ import annotations

from typing import Sequence

from repro.workload.objects import default_network_workload
from repro.workload.queries import RangeQueryGenerator

from .harness import (
    ExperimentResult,
    load_tree,
    make_tree,
    measure_queries,
    measure_updates,
    scaled,
)


def run_token_ablation(
    token_counts: Sequence[int] = (1, 2, 4, 8),
    num_objects: int = 6000,
    node_size: int = 2048,
    updates_per_object: float = 3.0,
    inspection_ratio: float = 0.2,
    moving_distance: float = 0.01,
    seed: int = 67,
) -> ExperimentResult:
    """Sweep the number of parallel cleaning tokens at fixed ir."""
    result = ExperimentResult(
        experiment="Token-count ablation",
        description="RUM-tree(token) with 1-8 parallel cleaning tokens at ir=20%",
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))
    for n_tokens in token_counts:
        workload = default_network_workload(
            n, moving_distance=moving_distance, seed=seed
        )
        tree = make_tree(
            "rum_token",
            node_size=node_size,
            inspection_ratio=inspection_ratio,
            n_tokens=n_tokens,
        )
        load_tree(tree, workload.initial())
        cost = measure_updates(tree, workload, n_updates)
        result.rows.append(
            {
                "tokens": n_tokens,
                "interval": tree.cleaner.inspection_interval,
                "update_io": cost.io_per_update,
                "garbage_ratio": tree.garbage_ratio(n),
                "leaves_inspected": tree.cleaner.leaves_inspected,
                "entries_removed": tree.cleaner.entries_removed,
            }
        )
    return result


def run_structure_ablation(
    num_objects: int = 5000,
    node_size: int = 2048,
    updates_per_object: float = 2.0,
    n_queries: int = 300,
    moving_distance: float = 0.01,
    seed: int = 71,
) -> ExperimentResult:
    """R* vs quadratic split, forced reinsertion on/off (RUM-tree)."""
    result = ExperimentResult(
        experiment="Structure-policy ablation",
        description="split policy and forced reinsertion on the RUM-tree",
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))
    configs = (
        ("rstar split + reinsert", "rstar", True),
        ("rstar split, no reinsert", "rstar", False),
        ("quadratic split + reinsert", "quadratic", True),
        ("quadratic split, no reinsert", "quadratic", False),
    )
    for label, split, forced in configs:
        workload = default_network_workload(
            n, moving_distance=moving_distance, seed=seed
        )
        tree = make_tree(
            "rum_touch",
            node_size=node_size,
            split=split,
            forced_reinsert=forced,
        )
        load_tree(tree, workload.initial())
        update_cost = measure_updates(tree, workload, n_updates)
        queries = RangeQueryGenerator(side=0.01, seed=73)
        query_cost = measure_queries(tree, queries, scaled(n_queries))
        result.rows.append(
            {
                "config": label,
                "update_io": update_cost.io_per_update,
                "search_io": query_cost.io_per_query,
                "leaves": tree.num_leaf_nodes(),
                "height": tree.height,
            }
        )
    return result


def run_fur_extension_ablation(
    extensions=(0.0, 0.01, 0.02, 0.05),
    num_objects: int = 6000,
    node_size: int = 2048,
    updates_per_object: float = 2.0,
    n_queries: int = 300,
    moving_distance: float = 0.02,
    seed: int = 89,
) -> ExperimentResult:
    """FUR-tree leaf-MBR extension sweep (the Figure-12b trade-off).

    The extension is the FUR-tree's central tuning knob: a larger band
    keeps more updates in place (cheap) but lets leaf MBRs bloat, which
    degrades search — the cause of the FUR-tree's search-cost peak in
    Figure 12(b).  This ablation quantifies both sides of the trade.
    """
    result = ExperimentResult(
        experiment="FUR-extension ablation",
        description="FUR-tree update/search I/O vs leaf-MBR extension band",
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))
    for extension in extensions:
        workload = default_network_workload(
            n, moving_distance=moving_distance, seed=seed
        )
        tree = make_tree(
            "fur", node_size=node_size, fur_extension=extension
        )
        load_tree(tree, workload.initial())
        update_cost = measure_updates(tree, workload, n_updates)
        queries = RangeQueryGenerator(side=0.01, seed=91)
        query_cost = measure_queries(tree, queries, scaled(n_queries))
        in_place, sibling, top_down = tree.update_case_mix()
        result.rows.append(
            {
                "extension": extension,
                "update_io": update_cost.io_per_update,
                "search_io": query_cost.io_per_query,
                "in_place_pct": 100.0 * in_place / max(1, in_place + sibling + top_down),
            }
        )
    return result
