"""Shared drivers for the three-tree comparison figures (12, 13, 14).

Each of those figures has the same structure: a workload parameter is swept
(moving distance / object extent / number of objects) and four panels are
reported — (a) average update I/O, (b) average search I/O, (c) overall I/O
per operation as the update:query ratio grows, and (d) the size of the
auxiliary structure (Update Memo vs. secondary index).  The two functions
here implement that structure once; the figure modules supply the sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.workload.queries import RangeQueryGenerator
from repro.workload.trace import mixed_trace, ratio_to_fraction

from .harness import (
    ExperimentResult,
    TREE_LABELS,
    auxiliary_size_bytes,
    load_tree,
    make_tree,
    measure_queries,
    measure_updates,
)

#: The trees compared in Figures 12–14 (the RUM-tree is the touch variant
#: with ir = 20%, the configuration Section 5.1.1 settles on).
COMPARISON_KINDS = ("rstar", "fur", "rum_touch")

#: Factory returning ``(workload, num_objects)`` for one sweep value.
WorkloadFactory = Callable[[float], Tuple[object, int]]


def sweep_comparison(
    experiment: str,
    description: str,
    sweep_key: str,
    values: Sequence[float],
    make_workload: WorkloadFactory,
    *,
    kinds: Iterable[str] = COMPARISON_KINDS,
    node_size: int = 2048,
    updates_factor: float = 2.0,
    n_queries: int = 300,
    query_side: float = 0.01,
    inspection_ratio: float = 0.2,
    fur_extension: float = 0.01,
) -> ExperimentResult:
    """Panels (a), (b), (d): update cost, search cost, auxiliary size.

    For every sweep value and every tree: load the initial population,
    replay ``updates_factor x num_objects`` updates measuring their average
    cost, then measure ``n_queries`` range queries, then record the
    auxiliary-structure size.
    """
    result = ExperimentResult(experiment=experiment, description=description)
    for value in values:
        for kind in kinds:
            workload, num_objects = make_workload(value)
            tree = make_tree(
                kind,
                node_size=node_size,
                inspection_ratio=inspection_ratio,
                fur_extension=fur_extension,
            )
            load_tree(tree, workload.initial())
            n_updates = max(16, int(num_objects * updates_factor))
            update_cost = measure_updates(tree, workload, n_updates)
            queries = RangeQueryGenerator(side=query_side, seed=17)
            query_cost = measure_queries(tree, queries, n_queries)
            result.rows.append(
                {
                    sweep_key: value,
                    "tree": TREE_LABELS[kind],
                    "num_objects": num_objects,
                    "update_io": update_cost.io_per_update,
                    "update_cpu_ms": update_cost.cpu_ms_per_update,
                    "search_io": query_cost.io_per_query,
                    "aux_bytes": auxiliary_size_bytes(tree),
                    "leaves": tree.num_leaf_nodes(),
                }
            )
    return result


def overall_comparison(
    experiment: str,
    description: str,
    ratios: Sequence[Tuple[int, int]],
    make_workload: Callable[[], Tuple[object, int]],
    *,
    kinds: Iterable[str] = COMPARISON_KINDS,
    node_size: int = 2048,
    ops_factor: float = 2.0,
    query_side: float = 0.01,
    inspection_ratio: float = 0.2,
    fur_extension: float = 0.01,
) -> ExperimentResult:
    """Panel (c): overall I/O per operation vs. the update:query ratio.

    Every tree replays the *same* mixed trace for each ratio (fresh trees
    per ratio so configurations do not contaminate each other).
    """
    from .harness import run_trace  # local import keeps module load cheap

    result = ExperimentResult(experiment=experiment, description=description)
    for updates, queries in ratios:
        fraction = ratio_to_fraction(updates, queries)
        for kind in kinds:
            workload, num_objects = make_workload()
            tree = make_tree(
                kind,
                node_size=node_size,
                inspection_ratio=inspection_ratio,
                fur_extension=fur_extension,
            )
            load_tree(tree, workload.initial())
            total_ops = max(32, int(num_objects * ops_factor))
            trace = mixed_trace(
                workload,
                RangeQueryGenerator(side=query_side, seed=23),
                total_ops,
                fraction,
                seed=29,
            )
            cost = run_trace(tree, trace)
            result.rows.append(
                {
                    "ratio": f"{updates}:{queries}",
                    "update_fraction": fraction,
                    "tree": TREE_LABELS[kind],
                    "overall_io": cost.io_per_operation,
                    "updates": cost.updates,
                    "queries": cost.queries,
                }
            )
    return result


def relative_to(
    rows: List[Dict], value_key: str, baseline_tree: str
) -> Dict[str, float]:
    """Average of ``value_key`` per tree, normalised to one baseline tree
    (used in EXPERIMENTS.md to state "RUM is x% of R*" like the paper)."""
    sums: Dict[str, List[float]] = {}
    for row in rows:
        sums.setdefault(row["tree"], []).append(row[value_key])
    averages = {tree: sum(v) / len(v) for tree, v in sums.items()}
    base = averages.get(baseline_tree)
    if not base:
        return {}
    return {tree: avg / base for tree, avg in averages.items()}
