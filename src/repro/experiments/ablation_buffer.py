"""Buffer-size ablation (beyond the paper's no-leaf-cache model).

Section 4 assumes only internal nodes are cached — every leaf access hits
disk.  A real buffer manager also caches leaf pages; this ablation sweeps
a resident leaf LRU from 0 pages (the paper's model) to a large fraction
of the leaf level and measures the update costs of the R*-tree and the
RUM-tree on the same workload.

Measured shape (and an honest caveat to the paper's comparison): caching
shrinks everyone's absolute costs, and the R*-tree gains *more* than the
RUM-tree — its overhead is read-dominated (the multi-path deletion
search), and reads are exactly what a cache absorbs, while the RUM-tree's
residual cost is scattered writes that must reach disk on eviction
regardless.  Once the buffer holds most of the leaf level, the R*-tree
overtakes the RUM-tree.  The memo-based approach is therefore valuable
precisely in the paper's motivating regime — update working sets much
larger than the buffer (millions of moving objects) — and this ablation
quantifies where that regime ends.
"""

from __future__ import annotations

from typing import Sequence

from repro.workload.objects import default_network_workload

from .harness import (
    ExperimentResult,
    TREE_LABELS,
    load_tree,
    make_tree,
    measure_updates,
    scaled,
)

DEFAULT_CACHE_SIZES = (0, 8, 32, 128)


def run_buffer_ablation(
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
    num_objects: int = 6000,
    node_size: int = 2048,
    updates_per_object: float = 2.0,
    moving_distance: float = 0.01,
    seed: int = 83,
) -> ExperimentResult:
    """One row per (cache size, tree) with the measured per-update I/O."""
    result = ExperimentResult(
        experiment="Buffer-size ablation",
        description="per-update I/O vs resident leaf-cache pages",
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))
    for cache_pages in cache_sizes:
        for kind in ("rstar", "rum_touch"):
            workload = default_network_workload(
                n, moving_distance=moving_distance, seed=seed
            )
            tree = make_tree(
                kind, node_size=node_size, leaf_cache_pages=cache_pages
            )
            load_tree(tree, workload.initial())
            cost = measure_updates(tree, workload, n_updates)
            result.rows.append(
                {
                    "cache_pages": cache_pages,
                    "tree": TREE_LABELS[kind],
                    "update_io": cost.io_per_update,
                    "leaves": tree.num_leaf_nodes(),
                }
            )
    return result
