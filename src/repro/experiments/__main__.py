"""Command-line runner for the reproduction experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig10 fig15
    python -m repro.experiments all
    REPRO_BENCH_SCALE=0.2 python -m repro.experiments fig12
    python -m repro.experiments fig10 --obs-out obs/ --obs-level trace

Each experiment prints the same table(s) the corresponding paper figure or
table reports; ``pytest benchmarks/`` additionally asserts the expected
qualitative shapes and archives the outputs.

``--obs-out DIR`` switches on the observability layer for every tree the
experiments build and writes a telemetry sidecar next to the tables:
``DIR/events.jsonl`` (the span/event trace), ``DIR/metrics.prom``
(Prometheus text exposition), and ``DIR/metrics.json``.  ``--obs-level``
selects the verbosity (``metrics`` < ``trace`` < ``debug``; ``debug``
additionally mirrors every event onto the ``repro.obs`` logging channel).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import (
    LEVELS,
    JsonlEventSink,
    LoggingEventSink,
    Observability,
    TeeEventSink,
    metrics_json,
    set_default_obs,
    write_prometheus,
)

from . import (
    run_buffer_ablation,
    run_cost_validation,
    run_crash_matrix,
    run_drift,
    run_extension_ablation,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig12_overall,
    run_fig13,
    run_fig13_overall,
    run_fig14,
    run_fig14_memo,
    run_fig14_overall,
    run_fig15,
    run_fig16,
    run_fur_extension_ablation,
    run_structure_ablation,
    run_table2,
    run_token_ablation,
)
from .harness import ExperimentResult, bench_scale
from .report import format_table, series_table

#: experiment name -> (description, list of (driver, renderer)).
_RENDERERS: Dict[str, Tuple[str, List[Tuple[Callable, Callable]]]] = {}


def _register(name: str, description: str, *pairs) -> None:
    _RENDERERS[name] = (description, list(pairs))


def _series(x_key: str, value_key: str):
    def render(result: ExperimentResult) -> str:
        return series_table(result, x_key, "tree", value_key)

    return render


def _plain(columns):
    def render(result: ExperimentResult) -> str:
        return format_table(
            columns,
            [[row.get(c, "") for c in columns] for row in result.rows],
        )

    return render


_register(
    "fig10",
    "Figure 10: update I/O and garbage ratio vs inspection ratio",
    (run_fig10, _series("inspection_ratio", "update_io")),
    (run_fig10, _series("inspection_ratio", "garbage_ratio")),
)
_register(
    "fig11",
    "Figure 11: update I/O, CPU and garbage ratio vs node size",
    (run_fig11, _series("node_size", "update_io")),
    (run_fig11, _series("node_size", "update_cpu_ms")),
    (run_fig11, _series("node_size", "garbage_ratio")),
)
_register(
    "fig12",
    "Figure 12: three trees vs moving distance (+ overall vs ratio)",
    (run_fig12, _series("moving_distance", "update_io")),
    (run_fig12, _series("moving_distance", "search_io")),
    (run_fig12, _series("moving_distance", "aux_bytes")),
    (run_fig12_overall, _series("ratio", "overall_io")),
)
_register(
    "fig13",
    "Figure 13: three trees vs object extent (+ overall vs ratio)",
    (run_fig13, _series("extent", "update_io")),
    (run_fig13, _series("extent", "search_io")),
    (run_fig13, _series("extent", "aux_bytes")),
    (run_fig13_overall, _series("ratio", "overall_io")),
)
_register(
    "fig14",
    "Figure 14: three trees vs number of objects (+ overall vs ratio)",
    (run_fig14, _series("num_objects_swept", "update_io")),
    (run_fig14, _series("num_objects_swept", "search_io")),
    (run_fig14, _series("num_objects_swept", "aux_bytes")),
    (run_fig14_overall, _series("ratio", "overall_io")),
)
_register(
    "fig14memo",
    "Figure 14(d) extended: disk-tiered memo scalability to 1M objects",
    (
        run_fig14_memo,
        _plain(
            [
                "num_objects",
                "memo_entries",
                "memo_bytes",
                "peak_ram_bytes",
                "spill_budget",
                "runs",
                "spilled_pages",
                "flush_writes",
                "probe_pages_per_lookup",
                "bloom_fp",
            ]
        ),
    ),
)
_register(
    "fig15",
    "Figure 15: update I/O under logging options I/II/III",
    (run_fig15, _plain(["option", "update_io", "leaf_io", "log_io"])),
)
_register(
    "table2",
    "Table 2: recovery I/O per option",
    (
        run_table2,
        _plain(
            [
                "option",
                "recovery_io",
                "leaf_reads",
                "log_reads",
                "spill_io",
                "memo_entries",
            ]
        ),
    ),
)
_register(
    "crashmatrix",
    "Crash matrix: fault injection x recovery options (Section 3.4)",
    (
        run_crash_matrix,
        _plain(
            [
                "option",
                "fault_point",
                "mode",
                "outcome",
                "pending_op",
                "lost_log_records",
                "live_objects",
                "recovery_io",
                "checks_passed",
            ]
        ),
    ),
)
_register(
    "fig16",
    "Figure 16: concurrent throughput vs update percentage",
    (run_fig16, _series("update_pct", "ops_per_s")),
)
_register(
    "cost",
    "Section 4: measured vs predicted update I/O",
    (run_cost_validation, _plain(["approach", "measured_io", "predicted_io"])),
)
_register(
    "drift",
    "Cost-model drift: live predicted vs measured I/O per op class",
    (
        run_drift,
        _plain(
            [
                "tree",
                "op",
                "predicted_io",
                "measured_io",
                "drift_ratio",
                "samples",
            ]
        ),
    ),
)
_register(
    "tokens",
    "Ablation: parallel cleaning tokens at fixed inspection ratio",
    (
        run_token_ablation,
        _plain(["tokens", "update_io", "garbage_ratio", "leaves_inspected"]),
    ),
)
_register(
    "structure",
    "Ablation: split policy and forced reinsertion",
    (
        run_structure_ablation,
        _plain(["config", "update_io", "search_io", "leaves", "height"]),
    ),
)
_register(
    "fur",
    "Ablation: FUR-tree leaf-MBR extension band (Fig. 12b trade-off)",
    (
        run_fur_extension_ablation,
        _plain(["extension", "update_io", "search_io", "in_place_pct"]),
    ),
)
_register(
    "buffer",
    "Ablation: resident leaf-cache size (beyond the paper's model)",
    (run_buffer_ablation, _series("cache_pages", "update_io")),
)
_register(
    "extensions",
    "Section 6: memo-based updates on B+-trees and grid files",
    (
        run_extension_ablation,
        _plain(["structure", "approach", "update_io", "garbage"]),
    ),
)


def _build_obs(args) -> Optional[Observability]:
    """The Observability instance the CLI flags ask for (None = off)."""
    if args.obs_out is None and args.obs_level is None:
        return None
    level = args.obs_level or "trace"
    if level == "off":
        return None
    sinks = []
    if args.obs_out is not None:
        sinks.append(
            JsonlEventSink(pathlib.Path(args.obs_out) / "events.jsonl")
        )
    if level == "debug" or not sinks:
        sinks.append(LoggingEventSink())
    sink = sinks[0] if len(sinks) == 1 else TeeEventSink(sinks)
    return Observability(level=level, sink=sink)


def _write_obs_sidecar(obs: Observability, out_dir: pathlib.Path) -> None:
    write_prometheus(obs.registry, out_dir / "metrics.prom")
    (out_dir / "metrics.json").write_text(metrics_json(obs.registry))
    parts = [
        out_dir / "events.jsonl",
        out_dir / "metrics.prom",
        out_dir / "metrics.json",
    ]
    if obs.recorder is not None:
        recorder_path = out_dir / "recorder.json"
        recorder_path.write_text(json.dumps(obs.recorder.dump(), indent=1))
        parts.append(recorder_path)
    print(
        "\ntelemetry sidecar: " + ", ".join(str(p) for p in parts)
    )


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--obs-out",
        metavar="DIR",
        default=None,
        help="write a telemetry sidecar (events.jsonl, metrics.prom, "
        "metrics.json) into DIR",
    )
    parser.add_argument(
        "--obs-level",
        choices=LEVELS,
        default=None,
        help="observability verbosity (default: trace when --obs-out is "
        "given, otherwise off)",
    )
    args = parser.parse_args(argv)

    names = args.experiments
    if names == ["list"]:
        width = max(len(n) for n in _RENDERERS)
        for name, (description, _pairs) in _RENDERERS.items():
            print(f"{name:<{width}}  {description}")
        return 0
    if names == ["all"]:
        names = list(_RENDERERS)

    unknown = [n for n in names if n not in _RENDERERS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; try 'list'"
        )

    obs = _build_obs(args)
    set_default_obs(obs)
    try:
        print(
            f"workload scale: {bench_scale()} "
            f"(set REPRO_BENCH_SCALE to change)"
        )
        for name in names:
            description, pairs = _RENDERERS[name]
            print(f"\n=== {name}: {description} ===")
            if obs is not None:
                obs.event("experiment.start", experiment=name)
            cache: Dict[Callable, ExperimentResult] = {}
            started = time.perf_counter()
            for driver, render in pairs:
                if driver not in cache:
                    cache[driver] = driver()
                print()
                print(render(cache[driver]))
            elapsed = time.perf_counter() - started
            if obs is not None:
                obs.event(
                    "experiment.end", experiment=name, dur_s=elapsed
                )
            print(f"\n[{name} finished in {elapsed:.1f}s]")
    finally:
        # Written in the finally so a crashed experiment still leaves the
        # flight-recorder ring and metrics on disk (CI uploads them as a
        # failure artifact).
        if obs is not None and args.obs_out is not None:
            _write_obs_sidecar(obs, pathlib.Path(args.obs_out))
        set_default_obs(None)
        if obs is not None:
            obs.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
