"""Experiment drivers — one per figure/table of the paper's evaluation.

Each ``run_*`` function builds fresh trees, replays a deterministic
workload, and returns an :class:`~repro.experiments.harness.ExperimentResult`
whose rows mirror the series the paper plots.  The pytest-benchmark
wrappers in ``benchmarks/`` call these and print the tables recorded in
EXPERIMENTS.md.
"""

from .ablation_buffer import run_buffer_ablation
from .ablation_cleaning import (
    run_fur_extension_ablation,
    run_structure_ablation,
    run_token_ablation,
)
from .ablation_extensions import run_extension_ablation
from .ablation_cost import run_cost_validation
from .comparison import overall_comparison, relative_to, sweep_comparison
from .crashmatrix import run_crash_matrix
from .drift import run_drift
from .fig10 import run_fig10
from .fig11 import run_fig11
from .fig12 import run_fig12, run_fig12_overall
from .fig13 import run_fig13, run_fig13_overall
from .fig14 import run_fig14, run_fig14_memo, run_fig14_overall
from .fig15 import run_fig15
from .fig16 import run_fig16
from .harness import (
    ExperimentResult,
    TREE_KINDS,
    TREE_LABELS,
    auxiliary_size_bytes,
    bench_scale,
    load_tree,
    make_tree,
    measure_queries,
    measure_updates,
    run_trace,
    scaled,
)
from .report import format_table, print_result, series_table
from .table2 import run_table2

__all__ = [
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig12_overall",
    "run_fig13",
    "run_fig13_overall",
    "run_fig14",
    "run_fig14_memo",
    "run_fig14_overall",
    "run_fig15",
    "run_fig16",
    "run_table2",
    "run_crash_matrix",
    "run_cost_validation",
    "run_drift",
    "run_token_ablation",
    "run_structure_ablation",
    "run_fur_extension_ablation",
    "run_extension_ablation",
    "run_buffer_ablation",
    "ExperimentResult",
    "TREE_KINDS",
    "TREE_LABELS",
    "make_tree",
    "load_tree",
    "measure_updates",
    "measure_queries",
    "run_trace",
    "auxiliary_size_bytes",
    "scaled",
    "bench_scale",
    "sweep_comparison",
    "overall_comparison",
    "relative_to",
    "format_table",
    "print_result",
    "series_table",
]
