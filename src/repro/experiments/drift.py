"""Cost-model drift report — live predicted-vs-measured I/O per op class.

Runs the paper's standard workload shape (the Figure-10 configuration:
network-constrained moving objects, 0.01-side square queries) against
every evaluated tree variant with the observability layer at ``metrics``
and reports the drift monitor's gauges: the Section-4 model's expected
counted I/O per operation, the measured per-op EWMA, and their ratio.

A ratio near 1.0 means the closed-form model still describes the running
tree; sustained drift away from 1.0 flags a workload outside the model's
assumptions (the ROADMAP's adaptive self-tuning item consumes exactly
this signal).  ``benchmarks/`` pins the fig10-configuration ratios to
the model's error envelope.
"""

from __future__ import annotations

from repro.obs import Observability, get_default_obs
from repro.workload.objects import default_network_workload
from repro.workload.queries import RangeQueryGenerator

from .harness import (
    ExperimentResult,
    TREE_KINDS,
    TREE_LABELS,
    load_tree,
    make_tree,
    measure_queries,
    measure_updates,
    scaled,
)


def run_drift(
    node_size: int = 2048,
    num_objects: int = 8000,
    updates_per_object: float = 3.0,
    num_queries: int = 400,
    moving_distance: float = 0.01,
    query_side: float = 0.01,
    seed: int = 11,
) -> ExperimentResult:
    """One row per (tree, op class) with predicted/measured I/O and the
    drift ratio, measured at the Figure-10 workload configuration."""
    result = ExperimentResult(
        experiment="Cost-model drift",
        description=(
            "predicted vs measured per-op I/O (EWMA) and drift ratio"
        ),
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))
    n_queries = scaled(num_queries)
    # Each tree needs its own registry (clean drift gauges), but the
    # flight recorder can be shared: when the CLI installed a default
    # obs (--obs-out), feeding its recorder keeps the sidecar's
    # recorder.json populated for this experiment too.
    default = get_default_obs()
    shared_recorder = None if default is None else default.recorder
    for kind in TREE_KINDS:
        workload = default_network_workload(
            n, moving_distance=moving_distance, seed=seed
        )
        obs = Observability(level="metrics", recorder=shared_recorder)
        tree = make_tree(kind, node_size=node_size, obs=obs)
        load_tree(tree, workload.initial())
        measure_updates(tree, workload, n_updates)
        measure_queries(
            tree, RangeQueryGenerator(side=query_side, seed=29), n_queries
        )
        for row in tree.drift_report():
            result.rows.append(dict(row, tree=TREE_LABELS[kind]))
        obs.close()
    return result
