"""Table 2 — recovery cost of the three options.

Three identically loaded RUM-trees (same workload seed), each running its
own logging option, crash after the same update stream; each then recovers
its Update Memo with its option's procedure.  The table reports the number
of disk accesses each recovery needed.

Expected shape (Section 5.5.2): Option I is by far the most expensive (its
intermediate per-object table spills to disk), Option II costs roughly one
read per leaf node plus the checkpoint, Option III only reads the
checkpoint and the log tail.  After an Option II recovery, the memo is a
*superset* of the truth (phantoms), which a cleaning cycle plus phantom
inspection then removes — the driver verifies that too.
"""

from __future__ import annotations

from repro.core.recovery import (
    recover_option_i,
    recover_option_ii,
    recover_option_iii,
)
from repro.workload.objects import default_network_workload

from .harness import (
    ExperimentResult,
    load_tree,
    make_tree,
    measure_updates,
    scaled,
)


def run_table2(
    num_objects: int = 6000,
    node_size: int = 2048,
    updates_per_object: float = 2.0,
    checkpoint_interval: int = 2000,
    inspection_ratio: float = 0.2,
    moving_distance: float = 0.01,
    spill_budget_fraction: float = 0.1,
    seed: int = 43,
) -> ExperimentResult:
    """One row per option with its recovery disk accesses.

    ``spill_budget_fraction`` models the share of the object population
    whose intermediate-table slots fit in memory during an Option I
    rebuild (the paper's point is that this table, unlike the memo itself,
    scales with the number of objects and does not fit).
    """
    result = ExperimentResult(
        experiment="Table 2",
        description="number of I/Os to recover the Update Memo after a crash",
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))
    procedures = {
        "I": lambda tree: recover_option_i(
            tree, memory_budget_entries=max(1, int(n * spill_budget_fraction))
        ),
        "II": recover_option_ii,
        "III": recover_option_iii,
    }
    for option, recover in procedures.items():
        workload = default_network_workload(
            n, moving_distance=moving_distance, seed=seed
        )
        tree = make_tree(
            "rum_touch",
            node_size=node_size,
            inspection_ratio=inspection_ratio,
            recovery_option=option if option != "I" else None,
            checkpoint_interval=checkpoint_interval,
        )
        load_tree(tree, workload.initial())
        measure_updates(tree, workload, n_updates)
        memo_before = {e.oid: (e.s_latest, e.n_old) for e in tree.memo}
        tree.crash()
        report = recover(tree)
        memo_after = {e.oid: (e.s_latest, e.n_old) for e in tree.memo}
        exact = memo_after == memo_before
        superset = all(
            oid in memo_after and memo_after[oid][0] >= s_latest
            for oid, (s_latest, _n) in memo_before.items()
        )
        result.rows.append(
            {
                "option": option,
                "recovery_io": report.disk_accesses,
                "leaf_reads": report.io.leaf_reads,
                "log_reads": report.io.log_reads,
                "spill_io": report.spill_accesses,
                "memo_entries": report.memo_entries_after,
                "memo_exact": exact,
                "memo_superset": superset,
            }
        )
    return result
