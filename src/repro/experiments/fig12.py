"""Figure 12 — performance vs. the moving distance between updates.

The paper's primary comparison: the R*-tree (top-down updates), FUR-tree
(bottom-up updates), and RUM-tree process the same workload while the
distance an object travels between two consecutive updates grows from 0 to
0.16.  Panels: (a) update I/O, (b) search I/O, (c) overall I/O per
operation as the update:query ratio grows from 1:100 to 10000:1, (d) size
of the auxiliary structure (secondary index vs. Update Memo).

Expected shapes (Section 5.2): the R*-tree is the most expensive updater at
every distance; the FUR-tree degrades rapidly with distance (fewer in-place
placements); the RUM-tree is flat and cheapest.  The FUR-tree's search cost
peaks at intermediate distances where leaf-MBR extension bloats the nodes.
The RUM-tree's search cost sits ~10% above the R*-tree's (smaller leaf
fanout).  The memo is far smaller than the secondary index.

Scale note: the paper indexes 2M objects, giving leaf MBRs of side ≈0.01;
at the simulator's population the leaves are larger, so the in-place →
top-down transition of the FUR-tree happens at proportionally larger
distances, but the ordering and monotonicity are preserved (DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.workload.objects import default_network_workload

from .comparison import overall_comparison, sweep_comparison
from .harness import ExperimentResult, scaled

DEFAULT_DISTANCES = (0.0, 0.01, 0.02, 0.04, 0.08, 0.16)
DEFAULT_RATIOS = ((1, 100), (1, 10), (1, 1), (10, 1), (100, 1), (10000, 1))


def run_fig12(
    num_objects: int = 8000,
    node_size: int = 2048,
    distances: Sequence[float] = DEFAULT_DISTANCES,
    seed: int = 19,
) -> ExperimentResult:
    """Panels (a), (b), (d): sweep the moving distance."""
    n = scaled(num_objects)

    def factory(distance: float):
        return (
            default_network_workload(n, moving_distance=distance, seed=seed),
            n,
        )

    return sweep_comparison(
        "Figure 12(a,b,d)",
        "update I/O, search I/O and auxiliary size vs moving distance",
        "moving_distance",
        distances,
        factory,
        node_size=node_size,
    )


def run_fig12_overall(
    num_objects: int = 6000,
    node_size: int = 2048,
    ratios: Sequence[Tuple[int, int]] = DEFAULT_RATIOS,
    moving_distance: float = 0.01,
    seed: int = 19,
) -> ExperimentResult:
    """Panel (c): overall cost vs update:query ratio at the default
    moving distance."""
    n = scaled(num_objects)

    def factory():
        return (
            default_network_workload(
                n, moving_distance=moving_distance, seed=seed
            ),
            n,
        )

    return overall_comparison(
        "Figure 12(c)",
        "overall I/O per operation vs update:query ratio "
        f"(moving distance {moving_distance})",
        ratios,
        factory,
        node_size=node_size,
    )
