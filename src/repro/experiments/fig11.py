"""Figure 11 — effect of the node size on the RUM-tree.

Sweeps the node (page) size over the paper's values 1024–8192 bytes and
reports (a) the average update I/O, (b) the average update CPU time, and
(c) the garbage ratio.  Expected shape (Section 5.1.2): larger nodes give
slightly lower update I/O (fewer splits), higher CPU (the cleaner checks
more entries per node), and a sharply lower garbage ratio — which is why
the paper fixes 8192 bytes for the remaining experiments.
"""

from __future__ import annotations

from typing import Sequence

from repro.workload.objects import default_network_workload

from .harness import (
    ExperimentResult,
    TREE_LABELS,
    load_tree,
    make_tree,
    measure_updates,
    scaled,
)

DEFAULT_NODE_SIZES = (1024, 2048, 4096, 8192)


def run_fig11(
    node_sizes: Sequence[int] = DEFAULT_NODE_SIZES,
    num_objects: int = 8000,
    updates_per_object: float = 3.0,
    inspection_ratio: float = 0.2,
    moving_distance: float = 0.01,
    seed: int = 13,
) -> ExperimentResult:
    """Run the Figure-11 sweep; one row per (node size, RUM variant)."""
    result = ExperimentResult(
        experiment="Figure 11",
        description="RUM-tree update I/O, update CPU and garbage ratio vs node size",
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))
    for node_size in node_sizes:
        for kind in ("rum_token", "rum_touch"):
            workload = default_network_workload(
                n, moving_distance=moving_distance, seed=seed
            )
            tree = make_tree(
                kind, node_size=node_size, inspection_ratio=inspection_ratio
            )
            load_tree(tree, workload.initial())
            cost = measure_updates(tree, workload, n_updates)
            result.rows.append(
                {
                    "node_size": node_size,
                    "tree": TREE_LABELS[kind],
                    "update_io": cost.io_per_update,
                    "update_cpu_ms": cost.cpu_ms_per_update,
                    "garbage_ratio": tree.garbage_ratio(n),
                    "leaves": tree.num_leaf_nodes(),
                }
            )
    return result
