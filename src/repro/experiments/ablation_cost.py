"""Cost-model validation (Section 4 ablation).

Not a figure of the paper, but the check that makes the analysis section
reproducible: measure each approach's per-update leaf I/O and compare it
against the Section-4 estimator fed with the *actual* tree statistics —

* top-down: Lemma 2 over the measured leaf MBR sides, + 3;
* bottom-up: the 3/6/7 mix weighted by the measured placement mix;
* memo-based: ``2·(1+ir)``;

and verify the steady-state garbage ratio / memo size against the
Section 4.1 bounds.
"""

from __future__ import annotations

from repro.analysis.bounds import (
    garbage_ratio_upper_bound,
    um_size_upper_bound,
)
from repro.analysis.cost_model import (
    expected_bottomup_update_io,
    expected_memo_update_io,
    expected_topdown_update_io,
)
from repro.workload.objects import default_network_workload

from .harness import (
    ExperimentResult,
    load_tree,
    make_tree,
    measure_updates,
    scaled,
)


def run_cost_validation(
    num_objects: int = 6000,
    node_size: int = 2048,
    updates_per_object: float = 2.0,
    inspection_ratio: float = 0.2,
    moving_distance: float = 0.02,
    seed: int = 61,
) -> ExperimentResult:
    """One row per approach: measured vs predicted per-update leaf I/O."""
    result = ExperimentResult(
        experiment="Cost-model validation",
        description="measured vs Section-4 predicted update I/O",
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))

    # --- top-down (R*-tree) ------------------------------------------------
    workload = default_network_workload(
        n, moving_distance=moving_distance, seed=seed
    )
    rstar = make_tree("rstar", node_size=node_size)
    load_tree(rstar, workload.initial())
    measured = measure_updates(rstar, workload, n_updates)
    predicted = expected_topdown_update_io(rstar.leaf_mbr_sides())
    result.rows.append(
        {
            "approach": "top-down (R*)",
            "measured_io": measured.leaf_io_per_update,
            "predicted_io": predicted,
        }
    )

    # --- bottom-up (FUR-tree) -----------------------------------------------
    workload = default_network_workload(
        n, moving_distance=moving_distance, seed=seed
    )
    fur = make_tree("fur", node_size=node_size)
    load_tree(fur, workload.initial())
    fur.updates_in_place = fur.updates_to_sibling = fur.updates_top_down = 0
    measured = measure_updates(fur, workload, n_updates)
    in_place, sibling, top_down = fur.update_case_mix()
    total = max(1, in_place + sibling + top_down)
    predicted = expected_bottomup_update_io(
        in_place / total, sibling / total
    )
    result.rows.append(
        {
            "approach": "bottom-up (FUR)",
            "measured_io": measured.io_per_update,
            "predicted_io": predicted,
            "case_mix": f"{in_place}/{sibling}/{top_down}",
        }
    )

    # --- memo-based (RUM-tree) -------------------------------------------------
    workload = default_network_workload(
        n, moving_distance=moving_distance, seed=seed
    )
    rum = make_tree(
        "rum_token", node_size=node_size, inspection_ratio=inspection_ratio
    )
    load_tree(rum, workload.initial())
    measured = measure_updates(rum, workload, n_updates)
    predicted = expected_memo_update_io(inspection_ratio)
    n_leaves = rum.num_leaf_nodes()
    result.rows.append(
        {
            "approach": f"memo-based (RUM, ir={inspection_ratio})",
            "measured_io": measured.leaf_io_per_update,
            "predicted_io": predicted,
            "garbage_ratio": rum.garbage_ratio(n),
            "garbage_bound": garbage_ratio_upper_bound(
                n_leaves, inspection_ratio, n
            ),
            "memo_bytes": rum.memo_size_bytes(),
            "memo_bound_bytes": um_size_upper_bound(
                n_leaves, inspection_ratio
            ),
        }
    )
    return result
