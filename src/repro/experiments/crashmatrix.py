"""The crash matrix: every fault point × every recovery option.

Not a figure from the paper — an executable version of its Section 3.4
durability claims.  Each row of the table is one
:class:`~repro.crashsim.CrashScenario` run through the
crash–recover–verify harness: the workload is killed at one registered
fault point, the store is reopened, the scenario's recovery option runs,
and every consistency property is asserted.  A row only appears if all
of its checks passed — the experiment *raises* on the first violated
guarantee, so "the table printed" means "the matrix is green".

Run it with::

    python -m repro.experiments crashmatrix
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import List, Optional

from repro.crashsim import (
    CrashScenario,
    WorkloadConfig,
    default_scenarios,
    run_scenario,
)
from repro.obs import get_default_obs

from .harness import ExperimentResult


def run_crash_matrix(
    scenarios: Optional[List[CrashScenario]] = None,
    config: Optional[WorkloadConfig] = None,
) -> ExperimentResult:
    """Run every scenario; raise ``CrashSimError`` on any violation."""
    scenarios = default_scenarios() if scenarios is None else scenarios
    config = config or WorkloadConfig()
    obs = get_default_obs()
    rows = []
    for scenario in scenarios:
        with tempfile.TemporaryDirectory(prefix="crashsim-") as tmp:
            outcome = run_scenario(
                scenario, Path(tmp), config=config, obs=obs
            )
        report = outcome.report
        rows.append(
            {
                "option": scenario.option,
                "fault_point": scenario.point or "(clean shutdown)",
                "mode": scenario.mode,
                "outcome": outcome.kind,
                "pending_op": outcome.pending[0] if outcome.pending else "",
                "lost_log_records": outcome.lost_log_records,
                "live_objects": (
                    outcome.live_objects
                    if outcome.live_objects is not None
                    else ""
                ),
                "recovery_io": report.disk_accesses if report else "",
                "checks_passed": len(outcome.checks),
            }
        )
    return ExperimentResult(
        experiment="crashmatrix",
        description=(
            "Crash matrix: fault injection x recovery options I/II/III "
            "(every row's guarantees asserted)"
        ),
        rows=rows,
    )
