"""Figure 15 — update I/O under the three logging options.

The RUM-tree processes the same update stream under recovery Option I (no
log), Option II (UM checkpoint every C updates) and Option III (checkpoints
plus a forced log write per memo change).  Expected shape (Section 5.5):
Option I cheapest, Option II barely above it, Option III roughly 50% more
expensive — the cost model says the surcharge is ``N·E/(ir·P·C)`` for
Option II and one extra forced write per update for Option III.
"""

from __future__ import annotations

from repro.workload.objects import default_network_workload

from .harness import (
    ExperimentResult,
    load_tree,
    make_tree,
    measure_updates,
    scaled,
)

OPTIONS = ("I", "II", "III")


def run_fig15(
    num_objects: int = 6000,
    node_size: int = 2048,
    updates_per_object: float = 3.0,
    checkpoint_interval: int = 2000,
    inspection_ratio: float = 0.2,
    moving_distance: float = 0.01,
    seed: int = 41,
) -> ExperimentResult:
    """One row per logging option with its per-update cost breakdown."""
    result = ExperimentResult(
        experiment="Figure 15",
        description="RUM-tree update I/O under logging options I/II/III",
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))
    for option in OPTIONS:
        workload = default_network_workload(
            n, moving_distance=moving_distance, seed=seed
        )
        tree = make_tree(
            "rum_touch",
            node_size=node_size,
            inspection_ratio=inspection_ratio,
            recovery_option=option,
            checkpoint_interval=checkpoint_interval,
        )
        load_tree(tree, workload.initial())
        cost = measure_updates(tree, workload, n_updates)
        result.rows.append(
            {
                "option": option,
                "update_io": cost.io_per_update,
                "leaf_io": cost.leaf_io_per_update,
                "log_io": cost.io.log_total / cost.updates,
                "checkpoint_interval": checkpoint_interval,
            }
        )
    return result
