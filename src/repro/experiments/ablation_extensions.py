"""Generality ablation: memo-based updates beyond R-trees (Section 6).

The conclusion claims the memo approach carries over to "B-trees,
quadtrees and Grid Files".  This driver replays an identical update-heavy
workload on the classic and the memo-based variant of all three
structures and reports the per-update disk-access ratio — the headline
RUM-vs-R* comparison, repeated on three other index families.
"""

from __future__ import annotations

import random

from repro.extensions.btree import BPlusTree, MemoBTree
from repro.extensions.grid import GridFile, MemoGrid
from repro.extensions.quadtree import MemoQuadtree, PRQuadtree

from .harness import ExperimentResult, scaled


def _drive_btree(tree, num_objects: int, updates: int, seed: int) -> None:
    rng = random.Random(seed)
    keys = {}
    for oid in range(num_objects):
        keys[oid] = rng.random()
        tree.insert_object(oid, keys[oid])
    before = tree.stats.snapshot()
    for _ in range(updates):
        oid = rng.randrange(num_objects)
        new_key = min(0.999, max(0.0, keys[oid] + rng.uniform(-0.05, 0.05)))
        tree.update_object(oid, keys[oid], new_key)
        keys[oid] = new_key
    tree._measured = tree.stats.snapshot() - before  # type: ignore[attr-defined]


def _drive_grid(grid, num_objects: int, updates: int, seed: int) -> None:
    rng = random.Random(seed)
    positions = {}
    for oid in range(num_objects):
        positions[oid] = (rng.random(), rng.random())
        grid.insert_object(oid, *positions[oid])
    before = grid.stats.snapshot()
    for _ in range(updates):
        oid = rng.randrange(num_objects)
        x, y = positions[oid]
        new = (
            min(1.0, max(0.0, x + rng.uniform(-0.1, 0.1))),
            min(1.0, max(0.0, y + rng.uniform(-0.1, 0.1))),
        )
        grid.update_object(oid, positions[oid], new)
        positions[oid] = new
    grid._measured = grid.stats.snapshot() - before  # type: ignore[attr-defined]


def run_extension_ablation(
    num_objects: int = 4000,
    updates_per_object: float = 2.0,
    node_size: int = 2048,
    inspection_ratio: float = 0.2,
    seed: int = 79,
) -> ExperimentResult:
    """One row per (structure, update approach) with per-update I/O."""
    result = ExperimentResult(
        experiment="Extension ablation",
        description="memo-based vs classic updates on B+-trees and grid files",
    )
    n = scaled(num_objects)
    updates = max(16, int(n * updates_per_object))

    structures = (
        ("B+-tree", "classic", BPlusTree(node_size=node_size), _drive_btree),
        (
            "B+-tree",
            "memo",
            MemoBTree(node_size=node_size, inspection_ratio=inspection_ratio),
            _drive_btree,
        ),
        (
            "quadtree",
            "classic",
            PRQuadtree(page_size=node_size),
            _drive_grid,
        ),
        (
            "quadtree",
            "memo",
            MemoQuadtree(
                page_size=node_size, inspection_ratio=inspection_ratio
            ),
            _drive_grid,
        ),
        ("grid file", "classic", GridFile(page_size=node_size), _drive_grid),
        (
            "grid file",
            "memo",
            MemoGrid(page_size=node_size, inspection_ratio=inspection_ratio),
            _drive_grid,
        ),
    )
    for family, approach, structure, drive in structures:
        drive(structure, n, updates, seed)
        measured = structure._measured
        row = {
            "structure": family,
            "approach": approach,
            "update_io": measured.leaf_total / updates,
            "entries": structure.num_entries(),
        }
        if hasattr(structure, "garbage_count"):
            row["garbage"] = structure.garbage_count()
        result.rows.append(row)
    return result
