"""Plain-text reporting of experiment results.

The benchmark harness prints, for every figure and table of the paper, the
same rows/series the paper plots — formatted as fixed-width text tables so
that ``pytest benchmarks/ --benchmark-only`` output doubles as the
reproduction record (EXPERIMENTS.md quotes these tables).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .harness import ExperimentResult


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells))
        if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(values: Sequence[str]) -> str:
        return "  ".join(str(v).rjust(w) for v, w in zip(values, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def print_result(result: ExperimentResult, columns: Sequence[str]) -> None:
    """Print one experiment's rows with the chosen columns."""
    print()
    print(f"=== {result.experiment}: {result.description} ===")
    rows = [[row.get(c, "") for c in columns] for row in result.rows]
    print(format_table(columns, rows))
    print()


def rows_by(result: ExperimentResult, key: str) -> Dict:
    """Group rows by one column (e.g. per-tree series)."""
    grouped: Dict = {}
    for row in result.rows:
        grouped.setdefault(row[key], []).append(row)
    return grouped


def series_table(
    result: ExperimentResult,
    x_key: str,
    series_key: str,
    value_key: str,
) -> str:
    """Pivot rows into an ``x`` column plus one column per series — the
    shape of the paper's line plots."""
    xs: List = []
    for row in result.rows:
        if row[x_key] not in xs:
            xs.append(row[x_key])
    names: List = []
    for row in result.rows:
        if row[series_key] not in names:
            names.append(row[series_key])
    lookup = {
        (row[x_key], row[series_key]): row.get(value_key, "") for row in result.rows
    }
    headers = [x_key] + [str(n) for n in names]
    body = [[x] + [lookup.get((x, n), "") for n in names] for x in xs]
    return format_table(headers, body)
