"""Metrics primitives: counters, gauges, fixed-bucket histograms.

The registry follows the same snapshot/delta discipline as
:class:`repro.storage.iostats.IOStats`: live instruments are mutable and
cheap to update (``inc()`` is one attribute add), while
:meth:`MetricsRegistry.snapshot` captures an immutable
:class:`MetricsSnapshot` whose difference against an earlier snapshot
yields per-interval values::

    before = registry.snapshot()
    run_workload()
    delta = registry.snapshot() - before
    print(delta.counters["wal.appends"])

Hot-path cost discipline
------------------------
Instrumented components cache bound instrument objects at attach time
(``self._c_appends = registry.counter("wal.appends")``) so the per-event
cost is one ``None`` check plus one integer add — never a registry dict
lookup.  Gauges support *callback* sampling (:meth:`Gauge.set_function`)
so sizes such as the Update-Memo footprint are read only when a snapshot
or exposition is produced, at zero cost on the update path.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

#: Quantiles reported by ``percentiles()`` and the Prometheus exposition.
PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def _bucket_percentile(
    buckets: Sequence[float], counts: Sequence[int], count: int, q: float
) -> float:
    """Interpolated quantile from cumulative bucket counts.

    Prometheus-style: the value is linearly interpolated inside the
    bucket that contains the requested rank (observations assumed
    uniform within a bucket); the first bucket collapses to its bound
    and anything in the overflow bucket is clamped to the last bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count == 0:
        return 0.0
    rank = q * count
    cumulative = 0.0
    for i in range(len(buckets)):
        in_bucket = counts[i]
        prev = cumulative
        cumulative += in_bucket
        if cumulative >= rank and in_bucket:
            hi = buckets[i]
            if i == 0:
                return hi
            lo = buckets[i - 1]
            return lo + (hi - lo) * ((rank - prev) / in_bucket)
    return buckets[-1]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value, set directly or sampled via a callback.

    A callback gauge (:meth:`set_function`) is evaluated lazily at
    snapshot/exposition time, so wiring one to an expensive size
    computation costs nothing on the instrumented hot path.
    """

    __slots__ = ("name", "value", "_fn")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self.value = value

    def set_function(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    def read(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.read()})"


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are upper bounds (inclusive, ascending); one overflow
    bucket catches everything above the last bound, so ``counts`` has
    ``len(buckets) + 1`` cells.  ``observe`` is a bisect plus two adds.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")

    #: Default bounds suited to per-operation I/O and millisecond
    #: latencies alike (decade-ish spacing, small values resolved).
    DEFAULT_BUCKETS: Tuple[float, ...] = (
        0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0,
    )

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else self.DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bucket bounds must be ascending")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated quantile of the observed distribution."""
        return _bucket_percentile(self.buckets, self.counts, self.count, q)

    def percentiles(self) -> Dict[str, float]:
        """The standard report quantiles (:data:`PERCENTILES`)."""
        return {name: self.percentile(q) for name, q in PERCENTILES}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable copy of one histogram's state."""

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]
    count: int
    total: float

    def __sub__(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.buckets != other.buckets:
            raise ValueError("cannot subtract histograms with different buckets")
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(a - b for a, b in zip(self.counts, other.counts)),
            count=self.count - other.count,
            total=self.total - other.total,
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated quantile of the observed distribution."""
        return _bucket_percentile(self.buckets, self.counts, self.count, q)

    def percentiles(self) -> Dict[str, float]:
        """The standard report quantiles (:data:`PERCENTILES`)."""
        return {name: self.percentile(q) for name, q in PERCENTILES}


@dataclass(frozen=True)
class MetricsSnapshot:
    """All registry values at one instant; subtraction gives deltas.

    Gauges are point-in-time readings, so a delta keeps the *newer*
    gauge values rather than subtracting them.
    """

    counters: Mapping[str, int] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, HistogramSnapshot] = field(default_factory=dict)

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = {
            name: value - other.counters.get(name, 0)
            for name, value in self.counters.items()
        }
        histograms: Dict[str, HistogramSnapshot] = {}
        for name, hist in self.histograms.items():
            prev = other.histograms.get(name)
            histograms[name] = hist - prev if prev is not None else hist
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-data form for JSON export."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                    "percentiles": h.percentiles(),
                }
                for name, h in self.histograms.items()
            },
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Asking twice for the same name returns the same object, so any
    component may bind ``registry.counter("wal.appends")`` and all
    increments land in one place.  Re-registering a name as a different
    instrument kind is an error.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: Mapping[str, object]) -> None:
        for store in (self._counters, self._gauges, self._histograms):
            if store is not kind and name in store:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            self._check_unique(name, self._counters)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_unique(name, self._gauges)
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            self._check_unique(name, self._histograms)
            hist = self._histograms[name] = Histogram(name, buckets)
        elif buckets is not None and tuple(buckets) != hist.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return hist

    # -- read side ---------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of every instrument (gauge callbacks sampled now)."""
        return MetricsSnapshot(
            counters={n: c.value for n, c in self._counters.items()},
            gauges={n: g.read() for n, g in self._gauges.items()},
            histograms={
                n: HistogramSnapshot(
                    buckets=h.buckets,
                    counts=tuple(h.counts),
                    count=h.count,
                    total=h.total,
                )
                for n, h in self._histograms.items()
            },
        )

    def names(self) -> Tuple[str, ...]:
        return tuple(
            sorted([*self._counters, *self._gauges, *self._histograms])
        )
