"""Event sinks: where spans and structured events go.

Every event is a flat-ish dict with at least ``type`` and ``ts`` (wall
clock, seconds).  Sinks are deliberately dumb — formatting decisions live
here so instrumentation sites emit plain dicts and never touch files or
loggers directly.
"""

from __future__ import annotations

import io
import json
import logging
import os
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Union


class EventSink:
    """Interface: receive one event dict."""

    def emit(self, event: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further emits are undefined."""


class NullEventSink(EventSink):
    """Discards everything (placeholder when only metrics are wanted)."""

    def emit(self, event: Dict[str, Any]) -> None:
        pass


class ListEventSink(EventSink):
    """Collects events in memory — tests and the exactness checks use it."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def of_type(self, event_type: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e.get("type") == event_type]


class JsonlEventSink(EventSink):
    """Appends one compact JSON object per line to a file.

    Accepts a path (opened lazily, parent directories created) or any
    text file object.  Events are written as they arrive; :meth:`close`
    flushes and closes only streams this sink opened itself.
    """

    def __init__(
        self, target: Union[str, "os.PathLike[str]", io.TextIOBase]
    ) -> None:
        self._own_file = isinstance(target, (str, os.PathLike))
        if isinstance(target, (str, os.PathLike)):
            path = pathlib.Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file: io.TextIOBase = open(path, "a", encoding="utf-8")
            self.path: Optional[pathlib.Path] = path
        else:
            self._file = target
            self.path = None
        self.emitted = 0

    def emit(self, event: Dict[str, Any]) -> None:
        self._file.write(json.dumps(event, sort_keys=True) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._own_file and not self._file.closed:
            self._file.flush()
            self._file.close()
        elif not self._own_file:
            self._file.flush()


class LoggingEventSink(EventSink):
    """Routes events to the stdlib :mod:`logging` debug channel.

    Each event becomes one ``DEBUG`` record on the ``repro.obs`` logger
    (message = the event type, the full payload in ``extra`` under
    ``obs_event`` and rendered compactly in the message tail), so any
    logging configuration — handlers, filters, level thresholds — applies
    unchanged.
    """

    def __init__(self, logger: Optional[logging.Logger] = None) -> None:
        self.logger = logger or logging.getLogger("repro.obs")

    def emit(self, event: Dict[str, Any]) -> None:
        if self.logger.isEnabledFor(logging.DEBUG):
            payload = {k: v for k, v in event.items() if k != "type"}
            self.logger.debug(
                "%s %s",
                event.get("type", "event"),
                json.dumps(payload, sort_keys=True, default=str),
                extra={"obs_event": event},
            )


class TeeEventSink(EventSink):
    """Fans one event out to several sinks (JSONL file + debug log)."""

    def __init__(self, sinks: Sequence[EventSink]) -> None:
        self.sinks = list(sinks)

    def emit(self, event: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
