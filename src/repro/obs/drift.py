"""Cost-model drift monitor — predicted vs measured I/O per op class.

Section 4 of the paper derives closed-form expected disk accesses per
operation (``repro.analysis.cost_model``).  The drift monitor turns that
static analysis into a *live* signal: for each op class it keeps

* an **EWMA of measured counted I/O** per operation, fed from the same
  attach-time-bound hook as the flight recorder (cheap float math on the
  hot path);
* a **predicted I/O** gauge whose value is computed lazily — only when
  the registry is snapshotted or exported — by a predictor callback fed
  with live tree statistics (leaf MBR sides, inspection ratio, bottom-up
  case mix, observed query-window extents);
* a **drift ratio** gauge (measured / predicted): ~1.0 while the model
  still tells the truth about the running tree, drifting away as the
  workload leaves the model's assumptions.  This ratio is the direct
  input the ROADMAP's adaptive self-tuning item consumes.

Gauges are registered as ``drift.<op>.predicted_io`` /
``.measured_io`` / ``.ratio`` / ``.samples`` and ride the existing
Prometheus/JSONL exporters unchanged.

The module is deliberately free of tree and cost-model imports: trees
construct predictors (closures over themselves and
``repro.analysis.cost_model``) in ``attach_obs`` and hand them to
:meth:`DriftMonitor.track`.  That keeps the hot-path feed a single bound
method call and keeps this module strict-typed without dragging the
whole tree layer into the checked import graph.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from .metrics import MetricsRegistry

#: Default EWMA smoothing factor (weight of the newest sample).
DEFAULT_ALPHA = 0.05

#: A predictor receives its tracker (for the window-extent EWMAs) and
#: returns the model's expected counted I/O per operation.
Predictor = Callable[["OpDriftTracker"], float]


class OpDriftTracker:
    """Measured-I/O EWMA plus model inputs for one op class.

    ``observe`` is the hot-path feed; everything else is read lazily by
    the gauges.  Query trackers additionally smooth the observed query
    window extents (``observe_window``) so the predictor can evaluate
    the model at the workload's actual window size.
    """

    __slots__ = (
        "op",
        "alpha",
        "samples",
        "measured",
        "window_samples",
        "window_w",
        "window_h",
        "_predictor",
    )

    def __init__(
        self, op: str, predictor: Predictor, alpha: float = DEFAULT_ALPHA
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.op = op
        self.alpha = alpha
        self.samples = 0
        self.measured = 0.0
        self.window_samples = 0
        self.window_w = 0.0
        self.window_h = 0.0
        self._predictor = predictor

    # -- hot-path feeds ----------------------------------------------------

    def observe(self, measured_io: float) -> None:
        """Fold one operation's counted I/O into the EWMA."""
        n = self.samples
        if n == 0:
            self.measured = measured_io
        else:
            a = self.alpha
            self.measured += a * (measured_io - self.measured)
        self.samples = n + 1

    def observe_window(self, width: float, height: float) -> None:
        """Fold one query's window extents into the window EWMAs."""
        n = self.window_samples
        if n == 0:
            self.window_w = width
            self.window_h = height
        else:
            a = self.alpha
            self.window_w += a * (width - self.window_w)
            self.window_h += a * (height - self.window_h)
        self.window_samples = n + 1

    # -- lazy gauge reads --------------------------------------------------

    def predicted(self) -> float:
        """The model's expected counted I/O at current tree state."""
        return self._predictor(self)

    def ratio(self) -> float:
        """Measured EWMA / predicted; 0.0 before any samples or when the
        model predicts nothing."""
        if self.samples == 0:
            return 0.0
        predicted = self.predicted()
        if predicted <= 0.0:
            return 0.0
        return self.measured / predicted


class DriftMonitor:
    """Registers and owns the per-op-class drift trackers of one tree."""

    def __init__(
        self, registry: MetricsRegistry, alpha: float = DEFAULT_ALPHA
    ) -> None:
        self.registry = registry
        self.alpha = alpha
        self.trackers: Dict[str, OpDriftTracker] = {}

    def track(self, op: str, predictor: Predictor) -> OpDriftTracker:
        """Create (or replace) the tracker for ``op`` and bind its gauges.

        Returns the tracker so ``attach_obs`` can cache it as the
        hot-path instrument.  Re-attaching (or attaching a second tree to
        the same registry) rebinds the gauge callbacks to the newest
        tracker — the same last-attach-wins behaviour as every other
        ``set_function`` gauge in the stack.
        """
        tracker = OpDriftTracker(op, predictor, alpha=self.alpha)
        self.trackers[op] = tracker
        reg = self.registry
        reg.gauge(f"drift.{op}.predicted_io").set_function(tracker.predicted)
        reg.gauge(f"drift.{op}.measured_io").set_function(
            lambda: tracker.measured
        )
        reg.gauge(f"drift.{op}.ratio").set_function(tracker.ratio)
        reg.gauge(f"drift.{op}.samples").set_function(
            lambda: float(tracker.samples)
        )
        return tracker

    def get(self, op: str) -> Optional[OpDriftTracker]:
        return self.trackers.get(op)

    def rows(self) -> List[Dict[str, Union[str, float, int]]]:
        """One report row per tracked op class (the ``drift`` experiment
        and tests read these instead of scraping gauge names)."""
        out: List[Dict[str, Union[str, float, int]]] = []
        for op in sorted(self.trackers):
            t = self.trackers[op]
            out.append(
                {
                    "op": op,
                    "predicted_io": t.predicted(),
                    "measured_io": t.measured,
                    "drift_ratio": t.ratio(),
                    "samples": t.samples,
                }
            )
        return out
