"""``repro.obs`` — metrics, spans, and event tracing for the storage/RUM stack.

The package bundles three independent layers behind one façade:

* a **metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges,
  and fixed-bucket histograms with ``IOSnapshot``-style snapshot/delta;
* a **span tracer** (:mod:`repro.obs.trace`) — nested wall-clock spans
  with exact attached I/O deltas, a true no-op when disabled;
* **event sinks and exporters** (:mod:`repro.obs.events`,
  :mod:`repro.obs.export`) — JSONL event stream, Prometheus text
  exposition, and a structured ``logging`` debug channel.

An :class:`Observability` object selects a level and wires the three
together; components expose ``attach_obs(obs)`` which caches bound
instruments so the *disabled* hot path costs one ``None`` check::

    obs = Observability(level="trace", sink=JsonlEventSink("events.jsonl"))
    tree = build_rum_tree(obs=obs)
    ... workload ...
    print(prometheus_text(obs.registry))

Levels
------
``off``
    Nothing recorded; ``attach_obs`` detaches every cached instrument, so
    the instrumented code runs the exact same path as an un-instrumented
    build (the <2% ``bench_micro`` guarantee is measured on this path).
``metrics``
    Counters/gauges/histograms only — no spans, no events.
``trace``
    Metrics plus spans and coarse events (cleaner cycles, checkpoints).
``debug``
    Everything, including per-token-step events; intended for the
    ``logging`` channel and small runs.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.iostats import IOStats

from .events import (
    EventSink,
    JsonlEventSink,
    ListEventSink,
    LoggingEventSink,
    NullEventSink,
    TeeEventSink,
)
from . import recorder as recorder_mod
from .drift import DriftMonitor, OpDriftTracker
from .explain import ExplainReport, NodeVisit
from .export import metrics_json, prometheus_text, write_prometheus
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from .recorder import FlightRecorder, OpRecord
from .trace import NULL_TRACER, NullSpan, NullTracer, Span, Tracer

#: Recognised observability levels, least to most verbose.
LEVELS = ("off", "metrics", "trace", "debug")


class Observability:
    """Facade bundling one registry, one tracer, and one event sink.

    ``enabled`` / ``metrics_on`` / ``tracing`` / ``debug`` are plain
    booleans so instrumentation sites can branch without string
    comparisons; ``tracer`` is :data:`NULL_TRACER` below the ``trace``
    level so a stray ``obs.span(...)`` is still a no-op.
    """

    def __init__(
        self,
        level: str = "trace",
        sink: Optional[EventSink] = None,
        registry: Optional[MetricsRegistry] = None,
        recorder: Optional[FlightRecorder] = None,
        recorder_capacity: Optional[int] = None,
        slow_op_ms: Optional[float] = None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown obs level {level!r}; expected one of {LEVELS}"
            )
        self.level = level
        self.enabled = level != "off"
        self.metrics_on = level in ("metrics", "trace", "debug")
        self.tracing = level in ("trace", "debug")
        self.debug = level == "debug"
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink: EventSink = sink if sink is not None else NullEventSink()
        self.tracer: Union[Tracer, NullTracer] = (
            Tracer(self.sink) if self.tracing else NULL_TRACER
        )
        # The flight recorder rides every level that records metrics; at
        # ``off`` it is None so the disabled path stays a true no-op.  A
        # pre-built recorder (shared across Observability instances) wins
        # over the capacity/threshold knobs.
        self.recorder: Optional[FlightRecorder]
        if not self.metrics_on:
            self.recorder = None
        elif recorder is not None:
            self.recorder = recorder
        else:
            self.recorder = FlightRecorder(
                capacity=(
                    recorder_capacity
                    if recorder_capacity is not None
                    else recorder_mod.DEFAULT_CAPACITY
                ),
                slow_ms=(
                    slow_op_ms
                    if slow_op_ms is not None
                    else recorder_mod.DEFAULT_SLOW_MS
                ),
            )

    @classmethod
    def disabled(cls) -> "Observability":
        """An attached-but-off instance (overhead benchmarking)."""
        return cls(level="off")

    # -- convenience pass-throughs ----------------------------------------

    def span(
        self, name: str, io: Optional["IOStats"] = None, **attrs: Any
    ) -> Union[Span, NullSpan]:
        """A tracer span (inert below the ``trace`` level)."""
        return self.tracer.span(name, io=io, **attrs)

    def event(self, event_type: str, **fields: Any) -> None:
        """Emit one structured event (dropped below ``trace``)."""
        if self.tracing:
            event: Dict[str, Any] = {"type": event_type, "ts": time.time()}
            event.update(fields)
            self.sink.emit(event)

    def close(self) -> None:
        self.sink.close()


# ---------------------------------------------------------------------------
# Process-default instance: lets the experiment CLI switch on telemetry for
# every tree the harness builds without threading a parameter through all
# figure drivers.
# ---------------------------------------------------------------------------

_default_obs: Optional[Observability] = None


def set_default_obs(obs: Optional[Observability]) -> None:
    """Install (or clear, with ``None``) the process-default instance."""
    global _default_obs
    _default_obs = obs


def get_default_obs() -> Optional[Observability]:
    """The process-default instance, or ``None`` when telemetry is off."""
    return _default_obs


__all__ = [
    "LEVELS",
    "Observability",
    "set_default_obs",
    "get_default_obs",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    # flight recorder / explain / drift
    "FlightRecorder",
    "OpRecord",
    "ExplainReport",
    "NodeVisit",
    "DriftMonitor",
    "OpDriftTracker",
    # tracing
    "Span",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_TRACER",
    # events
    "EventSink",
    "JsonlEventSink",
    "ListEventSink",
    "LoggingEventSink",
    "NullEventSink",
    "TeeEventSink",
    # exporters
    "prometheus_text",
    "write_prometheus",
    "metrics_json",
]
