"""Flight recorder — a bounded ring buffer of recent operations.

Aggregate counters (PR 2) answer "how much I/O did the workload do?";
the flight recorder answers "what did the last operations *individually*
do, and which were slow?".  Every instrumented operation — query, kNN,
update, batch, cleaner cycle — appends one fixed-size record carrying:

* the operation kind and owning tree,
* wall time,
* the exact :class:`~repro.storage.iostats.IOSnapshot` delta,
* memo lookups/hits during the op (RUM trees; zero elsewhere),
* the mirror-vs-traversal serving decision (queries),
* pages touched (the paper's counted page accesses).

The recorder is a plain data structure: it never emits events and never
touches the registry, so enabling it costs only the per-op capture (two
``perf_counter`` calls, one stats read, one ring append).  It is created
by :class:`~repro.obs.Observability` at every level that records metrics
and absent (``None``) at ``off`` — the disabled path stays a true no-op.

Hot-path contract (enforced by lint rule REP010): tree/storage code
reaches the recorder only through instruments bound in ``attach_obs``,
never through a global registry or default-obs lookup.

Records are stored as flat tuples to keep the capture cheap;
:meth:`FlightRecorder.records` materialises typed :class:`OpRecord`
views and :meth:`FlightRecorder.dump` produces a JSON-ready dict (schema
``flight_recorder/v1``) that round-trips through the exporters.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Tuple

from repro.storage.iostats import IOSnapshot

#: Schema tag stamped on every :meth:`FlightRecorder.dump`.
SCHEMA = "flight_recorder/v1"

#: Field order of the raw 10-tuple I/O deltas stored per record — matches
#: the :class:`IOSnapshot` dataclass declaration order.
IO_FIELDS: Tuple[str, ...] = (
    "leaf_reads",
    "leaf_writes",
    "internal_reads",
    "internal_writes",
    "index_reads",
    "index_writes",
    "log_writes",
    "log_reads",
    "memo_reads",
    "memo_writes",
)

#: Default ring capacity (operations retained).
DEFAULT_CAPACITY = 256

#: Default slow-op threshold in milliseconds.
DEFAULT_SLOW_MS = 10.0

#: Default number of slowest operations retained beyond the ring.
DEFAULT_SLOW_TOP_K = 16

# (seq, op, tree, dur_s, io10, memo_lookups, memo_hits, served_by)
_Raw = Tuple[int, str, str, float, Tuple[int, ...], int, int, str]


@dataclass(frozen=True)
class OpRecord:
    """One recorded operation (typed view over the raw ring tuple)."""

    seq: int
    op: str
    tree: str
    duration_ms: float
    io: IOSnapshot
    memo_lookups: int
    memo_hits: int
    served_by: str

    @property
    def pages_touched(self) -> int:
        """Counted page accesses of the op (leaf + index + log)."""
        return self.io.counted_total

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the ``dump()`` record schema)."""
        return {
            "seq": self.seq,
            "op": self.op,
            "tree": self.tree,
            "duration_ms": self.duration_ms,
            "io": self.io.as_dict(),
            "memo_lookups": self.memo_lookups,
            "memo_hits": self.memo_hits,
            "served_by": self.served_by,
            "pages_touched": self.pages_touched,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OpRecord":
        """Inverse of :meth:`as_dict` (exporter round-trip tests)."""
        return cls(
            seq=int(data["seq"]),
            op=str(data["op"]),
            tree=str(data["tree"]),
            duration_ms=float(data["duration_ms"]),
            io=IOSnapshot(**{f: int(data["io"][f]) for f in IO_FIELDS}),
            memo_lookups=int(data["memo_lookups"]),
            memo_hits=int(data["memo_hits"]),
            served_by=str(data["served_by"]),
        )


def _to_record(raw: _Raw) -> OpRecord:
    seq, op, tree, dur_s, io10, lookups, hits, served = raw
    return OpRecord(
        seq=seq,
        op=op,
        tree=tree,
        duration_ms=dur_s * 1000.0,
        io=IOSnapshot(*io10),
        memo_lookups=lookups,
        memo_hits=hits,
        served_by=served,
    )


class FlightRecorder:
    """Bounded ring of per-operation records plus a slow-op top-K log.

    Parameters
    ----------
    capacity:
        Operations retained in the ring (oldest evicted first).
    slow_ms:
        Threshold above which an op also enters the slow-op log.
    slow_top_k:
        How many of the slowest above-threshold ops to retain — these
        survive ring eviction, so a latency spike stays diagnosable long
        after the ring has wrapped.
    """

    __slots__ = (
        "capacity",
        "slow_ms",
        "slow_top_k",
        "_ring",
        "_slow",
        "_slow_s",
        "_seq",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_ms: float = DEFAULT_SLOW_MS,
        slow_top_k: int = DEFAULT_SLOW_TOP_K,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if slow_top_k < 0:
            raise ValueError("slow_top_k must be non-negative")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self.slow_top_k = slow_top_k
        self._ring: Deque[_Raw] = deque(maxlen=capacity)
        # Min-heap of (dur_s, seq, raw); the root is the fastest retained
        # slow op and is displaced first.  seq breaks duration ties so the
        # raw tuples are never compared.
        self._slow: List[Tuple[float, int, _Raw]] = []
        self._slow_s = slow_ms / 1000.0
        self._seq = 0

    # -- capture (hot path) ------------------------------------------------

    def record(
        self,
        op: str,
        tree: str,
        dur_s: float,
        io10: Tuple[int, ...],
        memo_lookups: int,
        memo_hits: int,
        served_by: str,
    ) -> None:
        """Append one operation record (cheap: tuple + ring append)."""
        seq = self._seq
        self._seq = seq + 1
        raw: _Raw = (seq, op, tree, dur_s, io10, memo_lookups, memo_hits, served_by)
        self._ring.append(raw)
        if dur_s >= self._slow_s and self.slow_top_k:
            slow = self._slow
            if len(slow) < self.slow_top_k:
                heapq.heappush(slow, (dur_s, seq, raw))
            elif dur_s > slow[0][0]:
                heapq.heapreplace(slow, (dur_s, seq, raw))

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded_total(self) -> int:
        """Operations recorded over the recorder's lifetime."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Operations evicted from the ring (lifetime - retained)."""
        return self._seq - len(self._ring)

    def records(self) -> List[OpRecord]:
        """Retained ring records, oldest first."""
        return [_to_record(raw) for raw in self._ring]

    def slow_records(self) -> List[OpRecord]:
        """Retained slow ops, slowest first."""
        ordered = sorted(self._slow, key=lambda e: (-e[0], e[1]))
        return [_to_record(raw) for _, _, raw in ordered]

    def clear(self) -> None:
        """Drop all retained records (lifetime counters keep counting)."""
        self._ring.clear()
        del self._slow[:]

    # -- export ------------------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """JSON-ready dump of the ring and slow-op log.

        The kernel backend is resolved at dump time (it is a per-process
        constant, so stamping it per record would only repeat one value).
        """
        from repro import kernels

        return {
            "schema": SCHEMA,
            "capacity": self.capacity,
            "recorded_total": self.recorded_total,
            "dropped": self.dropped,
            "slow_op_threshold_ms": self.slow_ms,
            "backend": kernels.BACKEND,
            "ops": [r.as_dict() for r in self.records()],
            "slow_ops": [r.as_dict() for r in self.slow_records()],
        }
