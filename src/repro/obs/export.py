"""Exporters: Prometheus text exposition and JSON metric dumps.

The Prometheus format follows the text exposition conventions: metric
names are the registry names with dots replaced by underscores and a
``repro_`` prefix; histograms expand to cumulative ``_bucket{le=...}``
series plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import List, Union

from .metrics import MetricsRegistry, MetricsSnapshot


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(source: Union[MetricsRegistry, MetricsSnapshot]) -> str:
    """Render a registry (sampled now) or a snapshot as exposition text."""
    snap = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: List[str] = []
    for name in sorted(snap.counters):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(snap.counters[name])}")
    for name in sorted(snap.gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(snap.gauges[name])}")
    for name in sorted(snap.histograms):
        hist = snap.histograms[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{prom}_sum {_prom_value(hist.total)}")
        lines.append(f"{prom}_count {hist.count}")
        # Interpolated quantiles as derived gauges; scrapers that only
        # understand the histogram series can ignore them.
        for pname, value in hist.percentiles().items():
            lines.append(f"# TYPE {prom}_{pname} gauge")
            lines.append(f"{prom}_{pname} {_prom_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(
    source: Union[MetricsRegistry, MetricsSnapshot],
    path: Union[str, "os.PathLike[str]"],
) -> pathlib.Path:
    """Write the exposition text to ``path`` (parents created)."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(prometheus_text(source))
    return out


def metrics_json(source: Union[MetricsRegistry, MetricsSnapshot]) -> str:
    """The snapshot as pretty-printed JSON (CI artifacts, debugging)."""
    snap = source.snapshot() if isinstance(source, MetricsRegistry) else source
    return json.dumps(snap.as_dict(), indent=2, sort_keys=True) + "\n"
