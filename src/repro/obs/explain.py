"""EXPLAIN/ANALYZE report structures for tree operations.

``tree.explain_query(window)`` / ``explain_knn`` / ``explain_update``
execute the *real* algorithm against the real buffer (ANALYZE
semantics: the I/O they report is I/O they actually charged) while
recording a per-node traversal trace:

* one :class:`NodeVisit` per ``get_node`` with the node's level, the
  buffer residency the page was served from, entries tested vs matched
  by the kernel call, and the **exact** I/O delta of that single visit;
* per-phase I/O snapshots for mutating ops (insert vs cleaning);
* memo inspection counts for RUM trees;
* the mirror-vs-traversal serving decision the live query path would
  have taken.

The defining invariant — pinned by tests — is that the trace reconciles
*exactly* with the global :class:`~repro.storage.iostats.IOStats` delta
of the operation: per-visit I/O plus per-phase residuals sum to
``io_delta``, in the PR 2 span tradition of never reporting estimated
I/O where exact accounting is available.

This module owns only the data model and rendering; the instrumented
traversals live on the tree classes (``RTreeBase.explain_query`` etc.)
next to the algorithms they mirror.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.storage.iostats import IOSnapshot

#: Schema tag stamped on every :meth:`ExplainReport.as_dict`.
SCHEMA = "explain/v1"


@dataclass(frozen=True)
class NodeVisit:
    """One node inspection during an explained traversal."""

    page_id: int
    level: int  # leaves are level 0
    is_leaf: bool
    entries_tested: int  # rows the kernel call scanned
    entries_matched: int  # rows that passed the predicate
    residency: str  # buffer layer the page came from ("internal"/"op"/"lru"/"disk")
    io: IOSnapshot  # exact I/O charged by this single visit

    def as_dict(self) -> Dict[str, Any]:
        return {
            "page_id": self.page_id,
            "level": self.level,
            "is_leaf": self.is_leaf,
            "entries_tested": self.entries_tested,
            "entries_matched": self.entries_matched,
            "residency": self.residency,
            "io": self.io.as_dict(),
        }


@dataclass
class ExplainReport:
    """Structured result of an EXPLAIN/ANALYZE run."""

    op: str  # "query" | "knn" | "update"
    tree: str
    backend: str
    params: Dict[str, Any] = field(default_factory=dict)
    served_by: Optional[str] = None  # queries: "mirror" | "traversal"
    visits: List[NodeVisit] = field(default_factory=list)
    #: Residual I/O not attributable to a single visit (e.g. the leaf
    #: write-back and split writes of an insert, or cleaner steps), keyed
    #: by phase name.  Empty for read-only ops.
    phases: Dict[str, IOSnapshot] = field(default_factory=dict)
    io_delta: IOSnapshot = field(default_factory=IOSnapshot)
    results: int = 0
    memo: Dict[str, int] = field(default_factory=dict)
    mirror: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    # -- derived views -----------------------------------------------------

    def nodes_per_level(self) -> Dict[int, int]:
        """Nodes visited per level (level 0 = leaves)."""
        out: Dict[int, int] = {}
        for v in self.visits:
            out[v.level] = out.get(v.level, 0) + 1
        return out

    @property
    def entries_tested(self) -> int:
        return sum(v.entries_tested for v in self.visits)

    @property
    def entries_matched(self) -> int:
        return sum(v.entries_matched for v in self.visits)

    def visit_io_total(self) -> IOSnapshot:
        total = IOSnapshot()
        for v in self.visits:
            total = total + v.io
        return total

    def accounted_io(self) -> IOSnapshot:
        """Per-visit I/O plus per-phase residuals."""
        total = self.visit_io_total()
        for phase_io in self.phases.values():
            total = total + phase_io
        return total

    def reconciles(self) -> bool:
        """True iff the trace accounts for the op's I/O *exactly*."""
        return self.accounted_io() == self.io_delta

    # -- export ------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "op": self.op,
            "tree": self.tree,
            "backend": self.backend,
            "params": dict(self.params),
            "served_by": self.served_by,
            "visits": [v.as_dict() for v in self.visits],
            "phases": {k: v.as_dict() for k, v in self.phases.items()},
            "io": self.io_delta.as_dict(),
            "results": self.results,
            "memo": dict(self.memo),
            "mirror": None if self.mirror is None else dict(self.mirror),
            "nodes_per_level": {
                str(k): v for k, v in sorted(self.nodes_per_level().items())
            },
            "entries_tested": self.entries_tested,
            "entries_matched": self.entries_matched,
            "reconciles": self.reconciles(),
            "extra": dict(self.extra),
        }

    def render(self) -> str:
        """Human-readable multi-line text form."""
        lines: List[str] = []
        header = f"EXPLAIN ANALYZE {self.op} on {self.tree} (backend={self.backend}"
        if self.served_by is not None:
            header += f", served_by={self.served_by}"
        header += ")"
        lines.append(header)
        for key, value in self.params.items():
            lines.append(f"  {key}: {value}")
        for level, count in sorted(self.nodes_per_level().items(), reverse=True):
            tested = sum(
                v.entries_tested for v in self.visits if v.level == level
            )
            matched = sum(
                v.entries_matched for v in self.visits if v.level == level
            )
            kind = "leaf" if level == 0 else "internal"
            lines.append(
                f"  level {level} ({kind}): {count} node(s), "
                f"{tested} entries tested, {matched} matched"
            )
        for v in self.visits:
            lines.append(
                f"    [L{v.level}] page {v.page_id} ({v.residency}) "
                f"tested={v.entries_tested} matched={v.entries_matched} "
                f"io={_io_brief(v.io)}"
            )
        for name, phase_io in self.phases.items():
            lines.append(f"  phase {name}: io={_io_brief(phase_io)}")
        if self.memo:
            memo_bits = ", ".join(
                f"{k}={v}" for k, v in sorted(self.memo.items())
            )
            lines.append(f"  memo: {memo_bits}")
        if self.mirror is not None:
            mirror_bits = ", ".join(
                f"{k}={v}" for k, v in sorted(self.mirror.items())
            )
            lines.append(f"  mirror: {mirror_bits}")
        io = self.io_delta
        lines.append(
            f"  io: {_io_brief(io)} (leaf_total={io.leaf_total}, "
            f"counted_total={io.counted_total})"
        )
        lines.append(f"  results: {self.results}")
        lines.append(f"  reconciles with IOStats delta: {self.reconciles()}")
        return "\n".join(lines)


def _io_brief(io: IOSnapshot) -> str:
    """Compact non-zero-fields rendering, e.g. ``leaf_reads=2+log_writes=1``;
    ``-`` when the snapshot is all zeros."""
    bits: List[Tuple[str, int]] = [
        (name, value) for name, value in io.as_dict().items() if value
    ]
    if not bits:
        return "-"
    return "+".join(f"{name}={value}" for name, value in bits)
