"""Span tracing: nested wall-clock timing with attached I/O deltas.

A span brackets one logical operation::

    with tracer.span("update", io=tree.stats, oid=42) as span:
        tree.update_object(...)
    span.io_delta.leaf_total   # exact I/O charged inside the span

Spans nest (the tracer keeps a stack; each emitted event carries its
``depth`` and its parent's sequence number) and every span end emits one
event to the tracer's sink, so a JSONL sink yields a complete trace.

Disabled tracing is a true no-op: :data:`NULL_TRACER` hands out one
shared :class:`NullSpan` whose ``__enter__``/``__exit__`` do nothing and
allocate nothing — and the instrumented hot paths additionally guard on
``obs is None`` so the common case never even reaches it.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Type

from .events import EventSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.iostats import IOSnapshot, IOStats


class Span:
    """One timed (and optionally I/O-accounted) operation."""

    __slots__ = (
        "name",
        "attrs",
        "_tracer",
        "_io_stats",
        "_io_before",
        "io_delta",
        "started_at",
        "duration_s",
        "depth",
        "seq",
        "parent_seq",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        io: Optional["IOStats"] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self._io_stats = io
        self._io_before: Optional["IOSnapshot"] = None
        self.io_delta: Optional["IOSnapshot"] = None
        self.started_at = 0.0
        self.duration_s = 0.0
        self.depth = 0
        self.seq = 0
        self.parent_seq: Optional[int] = None

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        if self._io_stats is not None:
            self._io_before = self._io_stats.snapshot()
        self.started_at = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.duration_s = time.perf_counter() - self.started_at
        io_stats = self._io_stats
        if io_stats is not None and self._io_before is not None:
            self.io_delta = io_stats.snapshot() - self._io_before
        self._tracer._pop(self, failed=exc_type is not None)
        return False


class NullSpan:
    """Shared do-nothing span for disabled tracing."""

    __slots__ = ()

    io_delta = None
    duration_s = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NULL_SPAN = NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` is the same inert object."""

    __slots__ = ()

    enabled = False

    def span(
        self, name: str, io: Optional["IOStats"] = None, **attrs: Any
    ) -> NullSpan:
        return _NULL_SPAN


NULL_TRACER = NullTracer()


class Tracer:
    """Produces nested spans and emits one event per span end.

    Events have ``type="span"`` and carry the span name, wall-clock
    timestamp, duration in milliseconds, nesting depth, a process-wide
    sequence number (``seq``) with the parent span's number
    (``parent``), any attributes given at creation, and — when the span
    was opened with ``io=`` — the exact :class:`IOSnapshot` delta under
    ``"io"``.
    """

    __slots__ = ("sink", "_stack", "_next_seq")

    enabled = True

    def __init__(self, sink: Optional[EventSink] = None) -> None:
        self.sink = sink
        self._stack: List[Span] = []
        self._next_seq = 0

    def span(
        self, name: str, io: Optional["IOStats"] = None, **attrs: Any
    ) -> Span:
        return Span(self, name, io=io, attrs=attrs or None)

    @property
    def depth(self) -> int:
        return len(self._stack)

    # -- span lifecycle (called by Span.__enter__/__exit__) ---------------

    def _push(self, span: Span) -> None:
        span.depth = len(self._stack)
        span.seq = self._next_seq
        self._next_seq += 1
        span.parent_seq = self._stack[-1].seq if self._stack else None
        self._stack.append(span)

    def _pop(self, span: Span, failed: bool) -> None:
        # Tolerate a mismatched stack (a span leaked across a generator
        # boundary) by unwinding to the span being closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self.sink is None:
            return
        event: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "ts": time.time(),
            "dur_ms": span.duration_s * 1000.0,
            "depth": span.depth,
            "seq": span.seq,
        }
        if span.parent_seq is not None:
            event["parent"] = span.parent_seq
        if failed:
            event["error"] = True
        if span.attrs:
            event.update(span.attrs)
        if span.io_delta is not None:
            event["io"] = span.io_delta.as_dict()
        self.sink.emit(event)
