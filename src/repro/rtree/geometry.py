"""Axis-aligned rectangle algebra for R-tree MBRs.

The paper works in a unit-square data space with two-dimensional minimum
bounding rectangles (MBRs).  :class:`Rect` is the single geometric value type
used across the whole code base: leaf-entry MBRs, directory-entry MBRs,
query windows, and the windows of Lemma 2 in the cost analysis.

Rectangles are closed, immutable, and represented by their two corners
``(xmin, ymin, xmax, ymax)``.  Degenerate rectangles (points, segments) are
valid: the paper's default workload indexes point objects (extent 0).

``Rect`` methods are the *scalar* forms of these operations, used for
one-off geometry (query construction, invariant checks, cost model).  The
hot paths — range/kNN search, ChooseSubtree, splits, page decode — apply
the same predicates to whole nodes at a time through the batch kernels in
:mod:`repro.kernels`, which evaluate the identical IEEE-754 expressions
over coordinate columns.  Changing a formula here without updating both
kernel backends (and vice versa) breaks that equivalence; see
``docs/KERNELS.md``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence, Tuple


class Rect:
    """A 2-D axis-aligned rectangle, treated as an immutable value.

    Supports the MBR operations needed by R-tree algorithms: area, margin,
    union, intersection tests, containment tests, enlargement, and overlap
    area.  Instances compare by value and are hashable, so they can be used
    in sets and as dictionary keys in tests.

    Rectangles sit on the hottest paths of the simulator, so the class is
    deliberately plain: no frozen-dataclass machinery, just slots.  By
    convention nothing in the code base mutates a ``Rect`` after creation.
    """

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    def __init__(self, xmin: float, ymin: float, xmax: float, ymax: float):
        if xmax < xmin or ymax < ymin:
            raise ValueError(
                f"invalid rectangle: ({xmin}, {ymin}, {xmax}, {ymax})"
            )
        self.xmin = xmin
        self.ymin = ymin
        self.xmax = xmax
        self.ymax = ymax

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, x: float, y: float) -> "Rect":
        """A degenerate rectangle covering a single point."""
        return cls(x, y, x, y)

    @classmethod
    def from_center(cls, x: float, y: float, extent: float) -> "Rect":
        """A square of side ``extent`` centred on ``(x, y)``.

        This is how the workload generator materialises an object with the
        paper's *object extent* parameter; ``extent == 0`` yields a point.
        """
        half = extent / 2.0
        return cls(x - half, y - half, x + half, y + half)

    @classmethod
    def union_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """The MBR of a non-empty collection of rectangles."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union_all() of an empty collection") from None
        xmin, ymin = first.xmin, first.ymin
        xmax, ymax = first.xmax, first.ymax
        for r in it:
            if r.xmin < xmin:
                xmin = r.xmin
            if r.ymin < ymin:
                ymin = r.ymin
            if r.xmax > xmax:
                xmax = r.xmax
            if r.ymax > ymax:
                ymax = r.ymax
        return cls(xmin, ymin, xmax, ymax)

    # -- scalar measures ---------------------------------------------------

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    def area(self) -> float:
        """The area of the rectangle (zero for points and segments)."""
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def margin(self) -> float:
        """Half-perimeter, the R* split criterion calls this the margin."""
        return (self.xmax - self.xmin) + (self.ymax - self.ymin)

    def center(self) -> Tuple[float, float]:
        return (
            (self.xmin + self.xmax) / 2.0,
            (self.ymin + self.ymax) / 2.0,
        )

    def center_distance(self, other: "Rect") -> float:
        """Euclidean distance between the two rectangle centres (R* uses
        this to pick the entries to force-reinsert)."""
        cx1, cy1 = self.center()
        cx2, cy2 = other.center()
        return math.hypot(cx1 - cx2, cy1 - cy2)

    # -- predicates ----------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least one point."""
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies fully inside this rectangle.

        This is the predicate of Lemma 2: a top-down deletion only needs to
        descend into nodes whose MBR *fully contains* the MBR of the entry
        being deleted.
        """
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    # -- combinations --------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """The MBR of the two rectangles."""
        return Rect(
            self.xmin if self.xmin < other.xmin else other.xmin,
            self.ymin if self.ymin < other.ymin else other.ymin,
            self.xmax if self.xmax > other.xmax else other.xmax,
            self.ymax if self.ymax > other.ymax else other.ymax,
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this rectangle to also cover ``other``.

        Guttman's ChooseLeaf and the R* ChooseSubtree both minimise this.
        """
        exmin = self.xmin if self.xmin < other.xmin else other.xmin
        eymin = self.ymin if self.ymin < other.ymin else other.ymin
        exmax = self.xmax if self.xmax > other.xmax else other.xmax
        eymax = self.ymax if self.ymax > other.ymax else other.ymax
        return (exmax - exmin) * (eymax - eymin) - self.area()

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (zero when disjoint)."""
        w = min(self.xmax, other.xmax) - max(self.xmin, other.xmin)
        if w <= 0.0:
            return 0.0
        h = min(self.ymax, other.ymax) - max(self.ymin, other.ymin)
        if h <= 0.0:
            return 0.0
        return w * h

    def min_dist(self, x: float, y: float) -> float:
        """Euclidean distance from a point to this rectangle (0 inside).

        The MINDIST bound of best-first nearest-neighbour search over
        R-trees: no object inside the rectangle can be closer than this.
        """
        dx = 0.0
        if x < self.xmin:
            dx = self.xmin - x
        elif x > self.xmax:
            dx = x - self.xmax
        dy = 0.0
        if y < self.ymin:
            dy = self.ymin - y
        elif y > self.ymax:
            dy = y - self.ymax
        return math.hypot(dx, dy)

    def expanded(self, delta: float) -> "Rect":
        """This rectangle grown by ``delta`` on every side (clamped at 0).

        The FUR-tree uses an expanded leaf MBR to decide whether an updated
        entry may stay in its original leaf node.
        """
        if delta < 0:
            raise ValueError("delta must be non-negative")
        return Rect(
            self.xmin - delta,
            self.ymin - delta,
            self.xmax + delta,
            self.ymax + delta,
        )

    # -- value semantics ------------------------------------------------------

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    def __iter__(self) -> Iterator[float]:
        return iter(self.as_tuple())

    def __eq__(self, other) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return (
            f"Rect({self.xmin:g}, {self.ymin:g}, "
            f"{self.xmax:g}, {self.ymax:g})"
        )


UNIT_SQUARE = Rect(0.0, 0.0, 1.0, 1.0)


def containment_probability(
    outer_w: float, outer_h: float, inner_w: float, inner_h: float
) -> float:
    """Lemma 2 of the paper.

    In a unit square, the probability that a randomly placed window of size
    ``outer_w x outer_h`` fully contains a randomly placed window of size
    ``inner_w x inner_h`` is ``max(outer_w - inner_w, 0) *
    max(outer_h - inner_h, 0)``.

    The cost model (Section 4.2.1) sums this over all leaf MBRs to predict
    the search cost of a top-down deletion.
    """
    return max(outer_w - inner_w, 0.0) * max(outer_h - inner_h, 0.0)


def clamp_to_unit(x: float, y: float) -> Tuple[float, float]:
    """Clamp a point into the unit square used as the normalised data space."""
    return (min(max(x, 0.0), 1.0), min(max(y, 0.0), 1.0))


def rects_mbr(rects: Sequence[Rect]) -> Rect:
    """Convenience alias of :meth:`Rect.union_all` for sequences."""
    return Rect.union_all(rects)
