"""The FUR-tree baseline: bottom-up updates via a secondary index.

Re-implementation of the Frequently Updated R-tree of Lee et al. [11] as
described there and in Sections 2 and 4.2.2 of the RUM-tree paper
(Figure 1b).  An update:

1. reads the **secondary index** to find the leaf holding the old entry
   (1 index read);
2. tries to keep the new entry **in place**, extending the leaf MBR by a
   bounded amount if needed (total 3 I/Os: index read + leaf read + leaf
   write);
3. otherwise tries a **sibling** leaf under the same parent (6 I/Os:
   index read, original leaf read+write, sibling read+write, index write);
4. otherwise falls back to removing the old entry and performing a
   **top-down insertion** of the new one (7 I/Os in the paper's counting).

The secondary index must additionally be repaired whenever entries change
leaves because of splits, reinsertion, or condensation — the maintenance
overhead the paper points out; the ``_on_leaf_split`` / ``_on_entry_placed``
hooks below charge it faithfully.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.storage.buffer import BufferPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

from .base import RTreeBase
from .geometry import Rect
from .node import LeafEntry, Node
from .rstar import ObjectNotFoundError
from .secondary_index import SecondaryIndex


class FURTree(RTreeBase):
    """Frequently Updated R-tree [11] with bottom-up update processing.

    Parameters
    ----------
    buffer:
        Storage stack (shared counters record both leaf and index I/O).
    extension:
        Maximum distance by which a leaf MBR may be extended to keep an
        updated entry in its original node ("the MBRs of the leaf nodes
        are allowed to extend to accommodate object updates in their
        original nodes", Section 5).  Larger values favour cheap in-place
        updates but degrade search performance — the source of the
        FUR-tree's search-cost peak in Figure 12(b).
    n_index_buckets:
        Bucket count of the secondary hash index.
    """

    name = "FUR-tree"

    def __init__(
        self,
        buffer: BufferPool,
        *,
        extension: float = 0.01,
        n_index_buckets: int = 1024,
        **kwargs,
    ):
        if extension < 0:
            raise ValueError("extension must be non-negative")
        kwargs.setdefault("maintain_leaf_ring", False)
        super().__init__(buffer, **kwargs)
        self.extension = extension
        self.index = SecondaryIndex(
            self.stats, buffer.codec.node_size, n_buckets=n_index_buckets
        )
        # Update-path statistics (Section 4.2.2 distinguishes the three
        # cases; the ablation benches report their mix).
        self.updates_in_place = 0
        self.updates_to_sibling = 0
        self.updates_top_down = 0

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Extend the base cascade with the bottom-up case mix and the
        secondary-index footprint."""
        super().attach_obs(obs)
        if self.obs is not None and obs.metrics_on:
            reg = obs.registry
            reg.gauge("fur.updates_in_place").set_function(
                lambda: self.updates_in_place
            )
            reg.gauge("fur.updates_to_sibling").set_function(
                lambda: self.updates_to_sibling
            )
            reg.gauge("fur.updates_top_down").set_function(
                lambda: self.updates_top_down
            )
            reg.gauge("fur.index_bytes").set_function(self.index.size_bytes)

    # ------------------------------------------------------------------
    # Secondary-index maintenance hooks
    # ------------------------------------------------------------------

    def _on_entry_placed(self, node: Node, entry: LeafEntry) -> None:
        self.index.assign(entry.oid, node.page_id)

    def _on_leaf_split(self, node: Node, sibling: Node) -> None:
        # Every entry that moved to the new sibling needs repointing; the
        # batched form charges one read+write per touched bucket page.
        self.index.assign_many(
            (e.oid, sibling.page_id) for e in sibling.entries
        )

    # ------------------------------------------------------------------
    # Moving-object index protocol
    # ------------------------------------------------------------------

    def insert_object(self, oid: int, rect: Rect) -> None:
        """Index a new object; the placement hook registers it in the
        secondary index."""
        self.insert(rect, oid)

    def update_object(self, oid: int, old_rect: Rect, new_rect: Rect) -> None:
        """Bottom-up update (Figure 1b)."""
        obs = self.obs
        if obs is None:
            self._bottom_up_update(oid, new_rect)
            return
        tick = self._obs_utick
        if tick:
            # Unsampled update: exact counter + leaf-I/O histogram only
            # (see RTreeBase._obs_update_lite).
            self._obs_utick = tick - 1
            s = self.stats
            lio0 = s.leaf_reads + s.leaf_writes
            self._bottom_up_update(oid, new_rect)
            self._obs_update_lite(lio0)
            return
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("update", io=self.stats, tree=self.name, oid=oid):
                self._bottom_up_update(oid, new_rect)
        else:
            self._bottom_up_update(oid, new_rect)
        self._obs_update_end(begin)

    def _bottom_up_update(self, oid: int, new_rect: Rect) -> None:
        leaf_page = self.index.lookup(oid)
        if leaf_page is None:
            raise ObjectNotFoundError(oid)
        with self.buffer.operation():
            leaf = self.buffer.get_node(leaf_page)
            entry_idx = self._find_entry_index(leaf, oid)
            if entry_idx is None:
                raise ObjectNotFoundError(
                    f"secondary index stale for oid {oid}"
                )

            if self._try_in_place(leaf, entry_idx, new_rect):
                self.updates_in_place += 1
                return
            if self._try_sibling(leaf, entry_idx, oid, new_rect):
                self.updates_to_sibling += 1
                return
            self._top_down_fallback(leaf, entry_idx, oid, new_rect)
            self.updates_top_down += 1

    def delete_object(self, oid: int, old_rect: Rect) -> None:
        """Bottom-up deletion: the index pinpoints the leaf directly."""
        leaf_page = self.index.lookup(oid)
        if leaf_page is None:
            raise ObjectNotFoundError(oid)
        with self.buffer.operation():
            leaf = self.buffer.get_node(leaf_page)
            entry_idx = self._find_entry_index(leaf, oid)
            if entry_idx is None:
                raise ObjectNotFoundError(oid)
            del leaf.entries[entry_idx]
            self.buffer.mark_dirty(leaf)
            self.index.remove(oid)
            self._condense(leaf)

    def search(self, window: Rect) -> List[Tuple[int, Rect]]:
        """All objects whose current MBR intersects ``window``."""
        obs = self.obs
        if obs is None:
            return [(e.oid, e.rect) for e in self.range_search(window)]
        tick = self._obs_qtick
        if tick:
            self._obs_qtick = tick - 1
            return [(e.oid, e.rect) for e in self.range_search(window)]
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("query", io=self.stats, tree=self.name):
                results = [(e.oid, e.rect) for e in self.range_search(window)]
        else:
            results = [(e.oid, e.rect) for e in self.range_search(window)]
        self._obs_query_end(begin, window)
        return results

    def nearest_neighbors(
        self, x: float, y: float, k: int
    ) -> List[Tuple[int, Rect]]:
        """The ``k`` objects nearest to ``(x, y)``, nearest first."""
        obs = self.obs
        if obs is None:
            return [(e.oid, e.rect) for e in self.nearest_entries(x, y, k)]
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("knn", io=self.stats, tree=self.name, k=k):
                results = [
                    (e.oid, e.rect) for e in self.nearest_entries(x, y, k)
                ]
        else:
            results = [(e.oid, e.rect) for e in self.nearest_entries(x, y, k)]
        self._obs_op_end(
            begin, "knn", self._obs_c_knn, self._obs_h_query_io, None
        )
        return results

    # ------------------------------------------------------------------
    # The three bottom-up cases
    # ------------------------------------------------------------------

    @staticmethod
    def _find_entry_index(leaf: Node, oid: int) -> Optional[int]:
        for i, entry in enumerate(leaf.entries):
            if entry.oid == oid:
                return i
        return None

    def _leaf_region(self, leaf: Node) -> Optional[Rect]:
        """The MBR the directory currently advertises for ``leaf``."""
        if leaf.page_id == self.root_id:
            return None  # root-as-leaf accepts anything
        parent = self.buffer.get_node(self.parent[leaf.page_id])
        return parent.entries[parent.find_child_index(leaf.page_id)].rect

    def _try_in_place(
        self, leaf: Node, entry_idx: int, new_rect: Rect
    ) -> bool:
        """Case 1: keep the entry in its leaf, extending the MBR if the new
        position lies within the allowed extension band."""
        region = self._leaf_region(leaf)
        if region is not None and not region.expanded(
            self.extension
        ).contains(new_rect):
            return False
        old = leaf.entries[entry_idx]
        leaf.entries[entry_idx] = LeafEntry(new_rect, old.oid, old.stamp)
        self.buffer.mark_dirty(leaf)
        self._adjust_upward(leaf)
        return True

    def _try_sibling(
        self, leaf: Node, entry_idx: int, oid: int, new_rect: Rect
    ) -> bool:
        """Case 2: move the entry to a sibling leaf under the same parent
        whose region already covers (or nearly covers) the new position."""
        if leaf.page_id == self.root_id:
            return False
        parent = self.buffer.get_node(self.parent[leaf.page_id])
        best_child: Optional[int] = None
        best_area = float("inf")
        for entry in parent.entries:
            if entry.child_id == leaf.page_id:
                continue
            if entry.rect.expanded(self.extension).contains(new_rect):
                if entry.rect.area() < best_area:
                    best_area = entry.rect.area()
                    best_child = entry.child_id
        if best_child is None:
            return False
        sibling = self.buffer.get_node(best_child)
        if len(sibling.entries) >= self.leaf_cap:
            return False  # full sibling: let the fallback handle it
        if len(leaf.entries) - 1 < self.min_leaf:
            return False  # removal would underflow: fallback handles it

        old = leaf.entries.pop(entry_idx)
        self.buffer.mark_dirty(leaf)
        sibling.entries.append(LeafEntry(new_rect, old.oid, old.stamp))
        self.buffer.mark_dirty(sibling)
        self._adjust_upward(leaf)
        self._adjust_upward(sibling)
        self.index.assign(oid, sibling.page_id, bucket_in_hand=True)
        return True

    def _top_down_fallback(
        self, leaf: Node, entry_idx: int, oid: int, new_rect: Rect
    ) -> None:
        """Case 3: delete from the (known) original leaf and reinsert the
        new entry with the standard top-down insertion."""
        del leaf.entries[entry_idx]
        self.buffer.mark_dirty(leaf)
        self._condense(leaf)
        self.insert(new_rect, oid)  # placement hook repoints the index

    # ------------------------------------------------------------------

    def _drift_update_predicted(self, tracker) -> float:
        """``IO_BU`` (Section 4.2.2) evaluated at the *measured* case mix.

        The paper's bottom-up model is parameterised by the probabilities
        of the three placement cases; the live tree knows its actual mix,
        so the drift monitor compares the measured EWMA against the model
        at those probabilities (0.0 before the first update — the ratio
        gauge stays 0 until there are samples anyway).
        """
        from repro.analysis.cost_model import expected_bottomup_update_io

        in_place, sibling, top_down = self.update_case_mix()
        total = in_place + sibling + top_down
        if total == 0:
            return 0.0
        return expected_bottomup_update_io(
            in_place / total, sibling / total
        )

    def update_case_mix(self) -> Tuple[int, int, int]:
        """Counts of (in-place, sibling, top-down) updates processed."""
        return (
            self.updates_in_place,
            self.updates_to_sibling,
            self.updates_top_down,
        )
