"""R-tree substrate: geometry, nodes, splits, and the two baseline trees.

* :class:`~repro.rtree.rstar.RStarTree` — R*-tree with top-down updates
  (Figure 1a of the paper);
* :class:`~repro.rtree.fur.FURTree` — FUR-tree with bottom-up updates and a
  disk-resident secondary index (Figure 1b);
* :class:`~repro.rtree.base.RTreeBase` — the shared R*-insertion machinery
  the RUM-tree also builds on.
"""

from .base import RTreeBase
from .bulk import bulk_load_objects, str_bulk_load
from .fur import FURTree
from .geometry import Rect, UNIT_SQUARE, containment_probability
from .node import IndexEntry, LeafEntry, Node, NO_PAGE
from .rstar import ObjectNotFoundError, RStarTree
from .secondary_index import SecondaryIndex
from .split import (
    REINSERT_FRACTION,
    choose_reinsert_entries,
    quadratic_split,
    rstar_split,
)

__all__ = [
    "RTreeBase",
    "str_bulk_load",
    "bulk_load_objects",
    "RStarTree",
    "FURTree",
    "SecondaryIndex",
    "ObjectNotFoundError",
    "Rect",
    "UNIT_SQUARE",
    "containment_probability",
    "IndexEntry",
    "LeafEntry",
    "Node",
    "NO_PAGE",
    "rstar_split",
    "quadratic_split",
    "choose_reinsert_entries",
    "REINSERT_FRACTION",
]
