"""Node-splitting and forced-reinsertion policies.

The paper builds on the R*-tree [1] for all trees ("the new value is
inserted into the RUM-tree using the standard R-tree insert algorithm [1]"),
so the default split is the R* topological split: choose the split axis by
minimum total margin, then the distribution by minimum overlap (ties broken
by minimum combined area).  Guttman's quadratic split is provided as well,
both for the ablation benchmarks and as a reference implementation.

All functions are pure: they take a list of entries (anything with a
``.rect`` attribute) and return two lists.

Splits happen on the insert hot path (every page overflow pays one), so the
inner loops work on plain coordinate tuples and floats rather than
:class:`~repro.rtree.geometry.Rect` objects: running prefix/suffix bounds
are 4-tuples, margins/areas/overlaps are computed inline, and each sort
order's goodness value is evaluated exactly once.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

from .geometry import Rect

E = TypeVar("E")  # any entry type exposing .rect

#: Prefix/suffix running bounds of a sorted entry sequence, as coordinate
#: tuples: ``prefix[k]`` covers ``entries[:k+1]``, ``suffix[k]`` covers
#: ``entries[k:]``.  With them the margin/overlap/area of every candidate
#: distribution is available in O(1), making the R* split linear after
#: sorting.
_Bounds = List[Tuple[float, float, float, float]]


def _split_tables(
    sorted_entries: Sequence[E], min_entries: int
) -> Tuple[_Bounds, _Bounds, float]:
    """Prefix/suffix bounds plus the R* margin sum, in one pass each.

    The margin sum (the R* "goodness value" used to pick the split axis)
    adds the half-perimeters of both groups over all legal distributions.
    """
    n = len(sorted_entries)
    prefix: _Bounds = []
    append = prefix.append
    r = sorted_entries[0].rect
    x1, y1, x2, y2 = r.xmin, r.ymin, r.xmax, r.ymax
    append((x1, y1, x2, y2))
    for k in range(1, n):
        r = sorted_entries[k].rect
        if r.xmin < x1:
            x1 = r.xmin
        if r.ymin < y1:
            y1 = r.ymin
        if r.xmax > x2:
            x2 = r.xmax
        if r.ymax > y2:
            y2 = r.ymax
        append((x1, y1, x2, y2))
    suffix: _Bounds = [prefix[0]] * n
    r = sorted_entries[n - 1].rect
    x1, y1, x2, y2 = r.xmin, r.ymin, r.xmax, r.ymax
    suffix[n - 1] = (x1, y1, x2, y2)
    for k in range(n - 2, -1, -1):
        r = sorted_entries[k].rect
        if r.xmin < x1:
            x1 = r.xmin
        if r.ymin < y1:
            y1 = r.ymin
        if r.xmax > x2:
            x2 = r.xmax
        if r.ymax > y2:
            y2 = r.ymax
        suffix[k] = (x1, y1, x2, y2)
    margin = 0.0
    for k in range(min_entries, n - min_entries + 1):
        a = prefix[k - 1]
        b = suffix[k]
        margin += (
            (a[2] - a[0]) + (a[3] - a[1]) + (b[2] - b[0]) + (b[3] - b[1])
        )
    return prefix, suffix, margin


def rstar_split(
    entries: Sequence[E], min_entries: int
) -> Tuple[List[E], List[E]]:
    """The R*-tree split of Beckmann et al. [1].

    1. For each axis, sort the entries by lower then by upper coordinate
       and accumulate the margin sums of every legal distribution; choose
       the axis with the minimum total margin.
    2. Along the chosen axis, pick the distribution with minimum overlap
       between the two group MBRs, breaking ties by minimum combined area.
    """
    n = len(entries)
    if n < 2 * min_entries:
        raise ValueError(
            f"cannot split {n} entries with minimum {min_entries}"
        )

    # Evaluate each sort order's margin sum exactly once; ties resolve in
    # sort-order precedence (x before y, lower before upper coordinate),
    # matching nested min() over (by_low, by_high) per axis then axes.
    best = None
    for key in (
        lambda e: e.rect.xmin,
        lambda e: e.rect.xmax,
        lambda e: e.rect.ymin,
        lambda e: e.rect.ymax,
    ):
        s = sorted(entries, key=key)
        tables = _split_tables(s, min_entries)
        if best is None or tables[2] < best[1][2]:
            best = (s, tables)
    axis_entries, (prefix, suffix, _) = best

    best_k = min_entries
    best_overlap = best_area = None
    for k in range(min_entries, n - min_entries + 1):
        ax1, ay1, ax2, ay2 = prefix[k - 1]
        bx1, by1, bx2, by2 = suffix[k]
        overlap = 0.0
        w = (ax2 if ax2 < bx2 else bx2) - (ax1 if ax1 > bx1 else bx1)
        if w > 0.0:
            h = (ay2 if ay2 < by2 else by2) - (ay1 if ay1 > by1 else by1)
            if h > 0.0:
                overlap = w * h
        area = (ax2 - ax1) * (ay2 - ay1) + (bx2 - bx1) * (by2 - by1)
        if (
            best_overlap is None
            or overlap < best_overlap
            or (overlap == best_overlap and area < best_area)
        ):
            best_overlap = overlap
            best_area = area
            best_k = k
    return list(axis_entries[:best_k]), list(axis_entries[best_k:])


def quadratic_split(
    entries: Sequence[E], min_entries: int
) -> Tuple[List[E], List[E]]:
    """Guttman's quadratic split (the original R-tree [6]).

    Seeds are the pair wasting the most area if grouped together; remaining
    entries are assigned greedily by largest preference difference.
    """
    n = len(entries)
    if n < 2 * min_entries:
        raise ValueError(
            f"cannot split {n} entries with minimum {min_entries}"
        )
    pool = list(entries)
    coords = [
        (r.xmin, r.ymin, r.xmax, r.ymax) for r in (e.rect for e in pool)
    ]
    areas = [(c[2] - c[0]) * (c[3] - c[1]) for c in coords]

    # Pick seeds: the pair with maximal dead space (O(n^2) over floats).
    worst = -1.0
    seed_a = seed_b = 0
    for i in range(n):
        ax1, ay1, ax2, ay2 = coords[i]
        area_i = areas[i]
        for j in range(i + 1, n):
            bx1, by1, bx2, by2 = coords[j]
            waste = (
                ((ax2 if ax2 > bx2 else bx2) - (ax1 if ax1 < bx1 else bx1))
                * ((ay2 if ay2 > by2 else by2) - (ay1 if ay1 < by1 else by1))
                - area_i
                - areas[j]
            )
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j
    left = [pool[seed_a]]
    right = [pool[seed_b]]
    rest = [
        (e, *coords[k]) for k, e in enumerate(pool) if k not in (seed_a, seed_b)
    ]
    lx1, ly1, lx2, ly2 = coords[seed_a]
    rx1, ry1, rx2, ry2 = coords[seed_b]
    l_area = areas[seed_a]
    r_area = areas[seed_b]

    while rest:
        # Honour the minimum-fill guarantee first.
        if len(left) + len(rest) == min_entries:
            left.extend(item[0] for item in rest)
            break
        if len(right) + len(rest) == min_entries:
            right.extend(item[0] for item in rest)
            break
        # Choose the entry with the strongest group preference.
        best_idx = 0
        best_diff = -1.0
        best_d_left = best_d_right = 0.0
        for k, (_, ex1, ey1, ex2, ey2) in enumerate(rest):
            d_left = (
                ((lx2 if lx2 > ex2 else ex2) - (lx1 if lx1 < ex1 else ex1))
                * ((ly2 if ly2 > ey2 else ey2) - (ly1 if ly1 < ey1 else ey1))
                - l_area
            )
            d_right = (
                ((rx2 if rx2 > ex2 else ex2) - (rx1 if rx1 < ex1 else ex1))
                * ((ry2 if ry2 > ey2 else ey2) - (ry1 if ry1 < ey1 else ey1))
                - r_area
            )
            diff = d_left - d_right
            if diff < 0.0:
                diff = -diff
            if diff > best_diff:
                best_diff = diff
                best_idx = k
                best_d_left = d_left
                best_d_right = d_right
        e, ex1, ey1, ex2, ey2 = rest.pop(best_idx)
        if best_d_left < best_d_right or (
            best_d_left == best_d_right and len(left) <= len(right)
        ):
            left.append(e)
            if ex1 < lx1:
                lx1 = ex1
            if ey1 < ly1:
                ly1 = ey1
            if ex2 > lx2:
                lx2 = ex2
            if ey2 > ly2:
                ly2 = ey2
            l_area = (lx2 - lx1) * (ly2 - ly1)
        else:
            right.append(e)
            if ex1 < rx1:
                rx1 = ex1
            if ey1 < ry1:
                ry1 = ey1
            if ex2 > rx2:
                rx2 = ex2
            if ey2 > ry2:
                ry2 = ey2
            r_area = (rx2 - rx1) * (ry2 - ry1)
    return left, right


#: Fraction of entries evicted by an R* forced reinsert (the paper's source,
#: Beckmann et al., found 30% to work best).
REINSERT_FRACTION = 0.3


def choose_reinsert_entries(
    entries: Sequence[E], fraction: float = REINSERT_FRACTION
) -> Tuple[List[E], List[E]]:
    """Partition an overflowing node for R* forced reinsertion.

    Returns ``(keep, reinsert)`` where ``reinsert`` holds the ``fraction``
    of entries whose centres lie farthest from the node MBR's centre,
    ordered farthest-first (the R* "far reinsert" variant).
    """
    if not entries:
        raise ValueError("cannot reinsert from an empty node")
    node_mbr = Rect.union_all(e.rect for e in entries)
    ncx = (node_mbr.xmin + node_mbr.xmax) * 0.5
    ncy = (node_mbr.ymin + node_mbr.ymax) * 0.5

    def center_dist_sq(e: E) -> float:
        # Squared distance orders identically to math.hypot and skips the
        # per-entry sqrt/function-call overhead.
        r = e.rect
        dx = (r.xmin + r.xmax) * 0.5 - ncx
        dy = (r.ymin + r.ymax) * 0.5 - ncy
        return dx * dx + dy * dy

    ranked = sorted(entries, key=center_dist_sq, reverse=True)
    count = max(1, int(round(len(entries) * fraction)))
    return ranked[count:], ranked[:count]
