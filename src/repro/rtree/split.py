"""Node-splitting and forced-reinsertion policies.

The paper builds on the R*-tree [1] for all trees ("the new value is
inserted into the RUM-tree using the standard R-tree insert algorithm [1]"),
so the default split is the R* topological split: choose the split axis by
minimum total margin, then the distribution by minimum overlap (ties broken
by minimum combined area).  Guttman's quadratic split is provided as well,
both for the ablation benchmarks and as a reference implementation.

All functions are pure: they take a list of entries (anything with a
``.rect`` attribute) and return two lists.

Splits happen on the insert hot path (every page overflow pays one), so the
scans run as batch kernels over a coordinate column block of the entries
(:mod:`repro.kernels`): the per-axis stable sorts, the prefix/suffix
running-bound tables with their margin sums, the distribution overlap/area
scan, and the quadratic seed search are each one kernel call.  Only the
O(candidates) selection loops and Guttman's inherently sequential greedy
assignment remain scalar.  Both kernel backends return bit-identical
numbers, so the chosen split — and therefore the tree shape — never
depends on whether numpy is installed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

from repro import kernels

from .geometry import Rect

HOT_PATH = True

E = TypeVar("E")  # any entry type exposing .rect


def rstar_split(
    entries: Sequence[E], min_entries: int
) -> Tuple[List[E], List[E]]:
    """The R*-tree split of Beckmann et al. [1].

    1. For each axis, sort the entries by lower then by upper coordinate
       and accumulate the margin sums of every legal distribution; choose
       the axis with the minimum total margin.
    2. Along the chosen axis, pick the distribution with minimum overlap
       between the two group MBRs, breaking ties by minimum combined area.
    """
    n = len(entries)
    if n < 2 * min_entries:
        raise ValueError(
            f"cannot split {n} entries with minimum {min_entries}"
        )

    # Evaluate each sort order's margin sum exactly once; ties resolve in
    # sort-order precedence (x before y, lower before upper coordinate),
    # matching nested min() over (by_low, by_high) per axis then axes.
    # Column dims: 0=xmin, 1=ymin, 2=xmax, 3=ymax.
    block = kernels.block_from_entries(entries)
    best = None
    for dim in (0, 2, 1, 3):
        order = kernels.argsort(block, dim)
        margin, prefix, suffix = kernels.split_tables(
            block, order, min_entries
        )
        if best is None or margin < best[0]:
            best = (margin, order, prefix, suffix)
    _margin, order, prefix, suffix = best

    overlaps, areas = kernels.distribution_scan(prefix, suffix, min_entries)
    best_k = min_entries
    best_overlap = best_area = None
    for j, k in enumerate(range(min_entries, n - min_entries + 1)):
        overlap = overlaps[j]
        area = areas[j]
        if (
            best_overlap is None
            or overlap < best_overlap
            or (overlap == best_overlap and area < best_area)
        ):
            best_overlap = overlap
            best_area = area
            best_k = k
    axis_entries = [entries[i] for i in order]
    return axis_entries[:best_k], axis_entries[best_k:]


def quadratic_split(
    entries: Sequence[E], min_entries: int
) -> Tuple[List[E], List[E]]:
    """Guttman's quadratic split (the original R-tree [6]).

    Seeds are the pair wasting the most area if grouped together (an
    O(n^2) kernel scan); remaining entries are assigned greedily by
    largest preference difference.
    """
    n = len(entries)
    if n < 2 * min_entries:
        raise ValueError(
            f"cannot split {n} entries with minimum {min_entries}"
        )
    pool = list(entries)
    block = kernels.block_from_entries(pool)
    coords = kernels.block_rows(block)
    areas = kernels.areas(block)
    seed_a, seed_b = kernels.quadratic_seeds(block)
    left = [pool[seed_a]]
    right = [pool[seed_b]]
    rest = [
        (e, *coords[k]) for k, e in enumerate(pool) if k not in (seed_a, seed_b)
    ]
    lx1, ly1, lx2, ly2 = coords[seed_a]
    rx1, ry1, rx2, ry2 = coords[seed_b]
    l_area = areas[seed_a]
    r_area = areas[seed_b]

    while rest:
        # Honour the minimum-fill guarantee first.
        if len(left) + len(rest) == min_entries:
            left.extend(item[0] for item in rest)
            break
        if len(right) + len(rest) == min_entries:
            right.extend(item[0] for item in rest)
            break
        # Choose the entry with the strongest group preference.
        best_idx = 0
        best_diff = -1.0
        best_d_left = best_d_right = 0.0
        for k, (_, ex1, ey1, ex2, ey2) in enumerate(rest):
            d_left = (
                ((lx2 if lx2 > ex2 else ex2) - (lx1 if lx1 < ex1 else ex1))
                * ((ly2 if ly2 > ey2 else ey2) - (ly1 if ly1 < ey1 else ey1))
                - l_area
            )
            d_right = (
                ((rx2 if rx2 > ex2 else ex2) - (rx1 if rx1 < ex1 else ex1))
                * ((ry2 if ry2 > ey2 else ey2) - (ry1 if ry1 < ey1 else ey1))
                - r_area
            )
            diff = d_left - d_right
            if diff < 0.0:
                diff = -diff
            if diff > best_diff:
                best_diff = diff
                best_idx = k
                best_d_left = d_left
                best_d_right = d_right
        e, ex1, ey1, ex2, ey2 = rest.pop(best_idx)
        if best_d_left < best_d_right or (
            best_d_left == best_d_right and len(left) <= len(right)
        ):
            left.append(e)
            if ex1 < lx1:
                lx1 = ex1
            if ey1 < ly1:
                ly1 = ey1
            if ex2 > lx2:
                lx2 = ex2
            if ey2 > ly2:
                ly2 = ey2
            l_area = (lx2 - lx1) * (ly2 - ly1)
        else:
            right.append(e)
            if ex1 < rx1:
                rx1 = ex1
            if ey1 < ry1:
                ry1 = ey1
            if ex2 > rx2:
                rx2 = ex2
            if ey2 > ry2:
                ry2 = ey2
            r_area = (rx2 - rx1) * (ry2 - ry1)
    return left, right


#: Fraction of entries evicted by an R* forced reinsert (the paper's source,
#: Beckmann et al., found 30% to work best).
REINSERT_FRACTION = 0.3


def choose_reinsert_entries(
    entries: Sequence[E], fraction: float = REINSERT_FRACTION
) -> Tuple[List[E], List[E]]:
    """Partition an overflowing node for R* forced reinsertion.

    Returns ``(keep, reinsert)`` where ``reinsert`` holds the ``fraction``
    of entries whose centres lie farthest from the node MBR's centre,
    ordered farthest-first (the R* "far reinsert" variant).  Stays scalar:
    one pass over the entries with a sort — no distribution tables for a
    kernel to amortise.
    """
    if not entries:
        raise ValueError("cannot reinsert from an empty node")
    node_mbr = Rect.union_all(e.rect for e in entries)
    ncx = (node_mbr.xmin + node_mbr.xmax) * 0.5
    ncy = (node_mbr.ymin + node_mbr.ymax) * 0.5

    def center_dist_sq(e: E) -> float:
        # Squared distance orders identically to math.hypot and skips the
        # per-entry sqrt/function-call overhead.
        r = e.rect
        dx = (r.xmin + r.xmax) * 0.5 - ncx
        dy = (r.ymin + r.ymax) * 0.5 - ncy
        return dx * dx + dy * dy

    ranked = sorted(entries, key=center_dist_sq, reverse=True)
    count = max(1, int(round(len(entries) * fraction)))
    return ranked[count:], ranked[:count]
