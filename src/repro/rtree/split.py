"""Node-splitting and forced-reinsertion policies.

The paper builds on the R*-tree [1] for all trees ("the new value is
inserted into the RUM-tree using the standard R-tree insert algorithm [1]"),
so the default split is the R* topological split: choose the split axis by
minimum total margin, then the distribution by minimum overlap (ties broken
by minimum combined area).  Guttman's quadratic split is provided as well,
both for the ablation benchmarks and as a reference implementation.

All functions are pure: they take a list of entries (anything with a
``.rect`` attribute) and return two lists.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

from .geometry import Rect

E = TypeVar("E")  # any entry type exposing .rect


def _prefix_suffix_mbrs(
    entries: Sequence[E],
) -> Tuple[List[Rect], List[Rect]]:
    """Running MBRs from the left and from the right.

    ``prefix[k]`` covers ``entries[:k+1]`` and ``suffix[k]`` covers
    ``entries[k:]``; with them the margin/overlap/area of every candidate
    distribution of a sorted sequence is available in O(1), making the
    whole R* split linear after sorting.
    """
    prefix: List[Rect] = []
    running = None
    for e in entries:
        running = e.rect if running is None else running.union(e.rect)
        prefix.append(running)
    suffix: List[Rect] = [None] * len(entries)  # type: ignore[list-item]
    running = None
    for k in range(len(entries) - 1, -1, -1):
        running = (
            entries[k].rect if running is None
            else running.union(entries[k].rect)
        )
        suffix[k] = running
    return prefix, suffix


def _margin_sum(sorted_entries: Sequence[E], min_entries: int) -> float:
    """Sum of the margins of both groups over all distributions (the R*
    goodness value used to pick the split axis)."""
    prefix, suffix = _prefix_suffix_mbrs(sorted_entries)
    total = 0.0
    for k in range(min_entries, len(sorted_entries) - min_entries + 1):
        total += prefix[k - 1].margin() + suffix[k].margin()
    return total


def rstar_split(
    entries: Sequence[E], min_entries: int
) -> Tuple[List[E], List[E]]:
    """The R*-tree split of Beckmann et al. [1].

    1. For each axis, sort the entries by lower then by upper coordinate
       and accumulate the margin sums of every legal distribution; choose
       the axis with the minimum total margin.
    2. Along the chosen axis, pick the distribution with minimum overlap
       between the two group MBRs, breaking ties by minimum combined area.
    """
    if len(entries) < 2 * min_entries:
        raise ValueError(
            f"cannot split {len(entries)} entries with minimum {min_entries}"
        )

    candidates: List[Sequence[E]] = []
    for key_low, key_high in (
        (lambda e: e.rect.xmin, lambda e: e.rect.xmax),
        (lambda e: e.rect.ymin, lambda e: e.rect.ymax),
    ):
        by_low = sorted(entries, key=key_low)
        by_high = sorted(entries, key=key_high)
        candidates.append(
            min((by_low, by_high), key=lambda s: _margin_sum(s, min_entries))
        )

    axis_entries = min(candidates, key=lambda s: _margin_sum(s, min_entries))

    prefix, suffix = _prefix_suffix_mbrs(axis_entries)
    best_k = min_entries
    best_key = None
    for k in range(min_entries, len(axis_entries) - min_entries + 1):
        mbr_left = prefix[k - 1]
        mbr_right = suffix[k]
        key = (
            mbr_left.overlap_area(mbr_right),
            mbr_left.area() + mbr_right.area(),
        )
        if best_key is None or key < best_key:
            best_key = key
            best_k = k
    return list(axis_entries[:best_k]), list(axis_entries[best_k:])


def quadratic_split(
    entries: Sequence[E], min_entries: int
) -> Tuple[List[E], List[E]]:
    """Guttman's quadratic split (the original R-tree [6]).

    Seeds are the pair wasting the most area if grouped together; remaining
    entries are assigned greedily by largest preference difference.
    """
    if len(entries) < 2 * min_entries:
        raise ValueError(
            f"cannot split {len(entries)} entries with minimum {min_entries}"
        )
    pool = list(entries)

    # Pick seeds: the pair with maximal dead space.
    worst = -1.0
    seed_a = seed_b = 0
    for i in range(len(pool)):
        for j in range(i + 1, len(pool)):
            waste = (
                pool[i].rect.union(pool[j].rect).area()
                - pool[i].rect.area()
                - pool[j].rect.area()
            )
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j
    left = [pool[seed_a]]
    right = [pool[seed_b]]
    rest = [e for k, e in enumerate(pool) if k not in (seed_a, seed_b)]
    mbr_left = left[0].rect
    mbr_right = right[0].rect

    while rest:
        # Honour the minimum-fill guarantee first.
        if len(left) + len(rest) == min_entries:
            left.extend(rest)
            break
        if len(right) + len(rest) == min_entries:
            right.extend(rest)
            break
        # Choose the entry with the strongest group preference.
        best_idx = 0
        best_diff = -1.0
        for k, e in enumerate(rest):
            d_left = mbr_left.enlargement(e.rect)
            d_right = mbr_right.enlargement(e.rect)
            diff = abs(d_left - d_right)
            if diff > best_diff:
                best_diff = diff
                best_idx = k
        e = rest.pop(best_idx)
        d_left = mbr_left.enlargement(e.rect)
        d_right = mbr_right.enlargement(e.rect)
        if d_left < d_right or (
            d_left == d_right and len(left) <= len(right)
        ):
            left.append(e)
            mbr_left = mbr_left.union(e.rect)
        else:
            right.append(e)
            mbr_right = mbr_right.union(e.rect)
    return left, right


#: Fraction of entries evicted by an R* forced reinsert (the paper's source,
#: Beckmann et al., found 30% to work best).
REINSERT_FRACTION = 0.3


def choose_reinsert_entries(
    entries: Sequence[E], fraction: float = REINSERT_FRACTION
) -> Tuple[List[E], List[E]]:
    """Partition an overflowing node for R* forced reinsertion.

    Returns ``(keep, reinsert)`` where ``reinsert`` holds the ``fraction``
    of entries whose centres lie farthest from the node MBR's centre,
    ordered farthest-first (the R* "far reinsert" variant).
    """
    if not entries:
        raise ValueError("cannot reinsert from an empty node")
    node_mbr = Rect.union_all(e.rect for e in entries)
    ranked = sorted(
        entries,
        key=lambda e: e.rect.center_distance(node_mbr),
        reverse=True,
    )
    count = max(1, int(round(len(entries) * fraction)))
    return ranked[count:], ranked[:count]
