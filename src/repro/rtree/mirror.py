"""Grid-bucketed flattened mirror of a tree's leaf level (query cache).

A range query over an R-tree reaches exactly the leaves whose *directory
entry* (the leaf's MBR, stored in its parent) intersects the window:
every ancestor entry's MBR contains the leaf MBR, so an intersecting leaf
entry implies every ancestor test passes too.  The answer set is then the
window-intersecting entries of those leaves.  Both sets are therefore
computable without walking the tree — from a flat copy of (a) the
leaf-pointing directory level and (b) every leaf entry.

:class:`QueryMirror` is that flat copy, bucketed into a uniform grid over
the unit square so a small window (the paper's queries are 0.01-side
squares) tests only the handful of rows in the cells it overlaps, with
plain-float comparisons — no tree descent, no per-node kernel dispatch.

Contract with the rest of the system:

* **Same answers.**  The mirror's candidate checks are the exact closed-
  interval float comparisons of the kernel backends; the grid only
  pre-filters (rows are bucketed into every cell their rectangle
  overlaps, windows gather every cell they overlap), so the reported row
  set is identical to a tree walk's.
* **Same counted I/O.**  The mirror answers the *CPU* side only.  The
  caller still charges one buffered read per hit leaf
  (:meth:`search` returns the hit leaf ids for exactly that purpose),
  which is the paper's entire query cost model — internal pages are
  pinned and free (Section 4).  The build walk reads pages through
  :meth:`~repro.storage.buffer.BufferPool.peek_node`, which is uncounted,
  so building the mirror never shows up in any measured I/O.
* **Freshness by version.**  The mirror records
  :attr:`~repro.storage.buffer.BufferPool.version` at build time; callers
  must compare it before use and rebuild after any mutation.  The tree
  only builds a mirror after a streak of mutation-free queries
  (hysteresis), so update-heavy phases never pay the build cost.

Entry rows reference the materialised :class:`~repro.rtree.node.LeafEntry`
objects directly, so a hit costs a list append — results carry the same
entry values a traversal would produce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.buffer import BufferPool

    from .node import LeafEntry

#: Hot-path marker for lint rule REP009: bulk MBR predicates in this module
#: must go through :mod:`repro.kernels` (see docs/LINT.md).  The mirror's
#: candidate checks run on raw float tuples, not ``Rect`` objects.
HOT_PATH = True

#: Grid resolution per axis.  Cells are 1/64 ≈ 0.0156 wide — just above
#: the paper's 0.01 query side, so a query overlaps at most 4 cells.
GRID = 64

#: ``(xmin, ymin, xmax, ymax, leaf_page_id)``
_DirRow = Tuple[float, float, float, float, int]

#: ``(xmin, ymin, xmax, ymax, build_order, entry)``
_EntryRow = Tuple[float, float, float, float, int, "LeafEntry"]


def _lo_cell(v: float, grid: int) -> int:
    """Clamped grid coordinate of ``v`` (lower bound side)."""
    if v <= 0.0:
        return 0
    if v >= 1.0:
        return grid - 1
    return int(v * grid)


class QueryMirror:
    """Immutable flat snapshot of one tree's leaf level, grid-bucketed."""

    __slots__ = (
        "version", "grid", "dir_cells", "entry_cells",
        "n_leaves", "n_entries",
    )

    def __init__(
        self,
        version: int,
        grid: int,
        dir_cells: List[List[_DirRow]],
        entry_cells: List[List[_EntryRow]],
        n_leaves: int = 0,
        n_entries: int = 0,
    ) -> None:
        self.version = version
        self.grid = grid
        self.dir_cells = dir_cells
        self.entry_cells = entry_cells
        self.n_leaves = n_leaves
        self.n_entries = n_entries

    def summary(self) -> Dict[str, int]:
        """Build-time facts for EXPLAIN output (no cell scans)."""
        return {
            "version": self.version,
            "grid": self.grid,
            "n_leaves": self.n_leaves,
            "n_entries": self.n_entries,
        }

    def search(
        self, wx1: float, wy1: float, wx2: float, wy2: float
    ) -> Tuple[List[int], List["LeafEntry"]]:
        """``(hit leaf page ids, hit leaf entries)`` for the window.

        The leaf ids are exactly the leaves a tree walk would read — the
        caller must charge one buffered read for each.  Entries come back
        in build order (directory DFS order, slot order within a leaf),
        which is deterministic for a given tree state.
        """
        grid = self.grid
        top = grid - 1
        # Clamped cell coordinates, inlined (this runs once per query and
        # the call overhead of four _lo_cell invocations is measurable).
        cx0 = 0 if wx1 <= 0.0 else top if wx1 >= 1.0 else int(wx1 * grid)
        cx1 = 0 if wx2 <= 0.0 else top if wx2 >= 1.0 else int(wx2 * grid)
        cy0 = 0 if wy1 <= 0.0 else top if wy1 >= 1.0 else int(wy1 * grid)
        cy1 = 0 if wy2 <= 0.0 else top if wy2 >= 1.0 else int(wy2 * grid)
        if cx0 == cx1 and cy0 == cy1:
            # Fast path: single cell — every row appears at most once, in
            # build order, so the filtered scans are already deduplicated
            # and ordered.
            cell = cy0 * grid + cx0
            leaf_ids = [
                row[4]
                for row in self.dir_cells[cell]
                if row[0] <= wx2 and wx1 <= row[2]
                and row[1] <= wy2 and wy1 <= row[3]
            ]
            return leaf_ids, [
                row[5]
                for row in self.entry_cells[cell]
                if row[0] <= wx2 and wx1 <= row[2]
                and row[1] <= wy2 and wy1 <= row[3]
            ]
        # General path: rows spanning several gathered cells would be
        # reported once per cell; dedupe by page id / build order.
        seen_leaves = set()
        leaf_ids = []
        hits: List[_EntryRow] = []
        seen_rows = set()
        dir_cells = self.dir_cells
        entry_cells = self.entry_cells
        for cy in range(cy0, cy1 + 1):
            base = cy * grid
            for cx in range(cx0, cx1 + 1):
                cell = base + cx
                for row in dir_cells[cell]:
                    if (
                        row[0] <= wx2 and wx1 <= row[2]
                        and row[1] <= wy2 and wy1 <= row[3]
                        and row[4] not in seen_leaves
                    ):
                        seen_leaves.add(row[4])
                        leaf_ids.append(row[4])
                for row in entry_cells[cell]:
                    if (
                        row[0] <= wx2 and wx1 <= row[2]
                        and row[1] <= wy2 and wy1 <= row[3]
                        and row[4] not in seen_rows
                    ):
                        seen_rows.add(row[4])
                        hits.append(row)
        hits.sort(key=_row_order)
        return leaf_ids, [row[5] for row in hits]


def _row_order(row: _EntryRow) -> int:
    return row[4]


def _bucket(cells: List[List[object]], grid: int, row) -> None:
    """Append ``row`` to every cell its rectangle overlaps (clamped)."""
    cx0 = _lo_cell(row[0], grid)
    cx1 = _lo_cell(row[2], grid)
    cy0 = _lo_cell(row[1], grid)
    cy1 = _lo_cell(row[3], grid)
    for cy in range(cy0, cy1 + 1):
        base = cy * grid
        for cx in range(cx0, cx1 + 1):
            cells[base + cx].append(row)


def build_mirror(buffer: "BufferPool", root_id: int) -> QueryMirror:
    """Snapshot the tree rooted at ``root_id`` into a :class:`QueryMirror`.

    Walks the directory levels and the leaves through
    :meth:`~repro.storage.buffer.BufferPool.peek_node` (uncounted; serves
    dirty in-memory state when present).  The version is captured *before*
    the walk, so a mutation racing the build can only make the mirror
    immediately stale, never silently wrong.
    """
    version = buffer.version
    grid = GRID
    root = buffer.peek_node(root_id)
    dir_rows: List[_DirRow] = []
    if root.is_leaf:
        # A root-only tree has no directory level; the traversal reads
        # the root leaf unconditionally, so mirror an always-hit row.
        inf = float("inf")
        dir_rows.append((-inf, -inf, inf, inf, root_id))
    else:
        stack = [root]
        while stack:
            node = stack.pop()
            entries = node.entries
            first_child = buffer.peek_node(entries[0].child_id)
            if first_child.is_leaf:
                # R-trees are height-balanced: all children of one node
                # live on the same level.
                for entry in entries:
                    r = entry.rect
                    dir_rows.append(
                        (r.xmin, r.ymin, r.xmax, r.ymax, entry.child_id)
                    )
            else:
                stack.append(first_child)
                stack.extend(
                    buffer.peek_node(e.child_id) for e in entries[1:]
                )
    dir_cells: List[List[_DirRow]] = [[] for _ in range(grid * grid)]
    entry_cells: List[List[_EntryRow]] = [[] for _ in range(grid * grid)]
    for dir_row in dir_rows:
        _bucket(dir_cells, grid, dir_row)
    order = 0
    for dir_row in dir_rows:
        leaf = buffer.peek_node(dir_row[4])
        for entry in leaf.entries:
            r = entry.rect
            _bucket(
                entry_cells, grid,
                (r.xmin, r.ymin, r.xmax, r.ymax, order, entry),
            )
            order += 1
    return QueryMirror(
        version, grid, dir_cells, entry_cells,
        n_leaves=len(dir_rows), n_entries=order,
    )
