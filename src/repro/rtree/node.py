"""R-tree node and entry objects.

A node is one disk page.  Leaf entries follow the paper exactly:

* classic R-tree / R*-tree / FUR-tree leaf entry: ``(MBR_o, p_o)`` where the
  pointer ``p_o`` doubles as the object identifier — 40 bytes on disk;
* RUM-tree leaf entry (Section 3.1): ``(MBR_o, p_o, oid, stamp)`` —
  56 bytes on disk, which is what gives the RUM-tree its smaller leaf
  fanout and the ~10% search-cost penalty observed in Section 5.

Internal (directory) entries are ``(MBR_c, p_c)`` — 40 bytes.

Leaf nodes additionally carry ``prev_leaf``/``next_leaf`` page ids forming
the doubly-linked circular ring that the RUM-tree's cleaning tokens walk
(Section 3.3.1).  Non-RUM trees simply leave the ring untouched.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

from repro import kernels

from .geometry import Rect

#: Hot-path marker for lint rule REP009: bulk MBR predicates in this module
#: must go through :mod:`repro.kernels` (see docs/LINT.md).
HOT_PATH = True

#: Disk page id used to mean "no page".
NO_PAGE = -1

#: Bytes per on-disk leaf entry in the classic layout: 4 float64 MBR
#: coordinates plus one 8-byte pointer/oid.
CLASSIC_LEAF_ENTRY_BYTES = 40

#: Bytes per on-disk RUM-tree leaf entry: classic layout plus an 8-byte oid
#: and an 8-byte stamp (Section 3.1).
RUM_LEAF_ENTRY_BYTES = 56

#: Bytes per on-disk directory entry: MBR plus child page id.
INDEX_ENTRY_BYTES = 40

#: Fixed per-node header: flags, entry count, prev/next leaf pointers and
#: padding.  See :mod:`repro.storage.codec` for the exact layout.
NODE_HEADER_BYTES = 32


class LeafEntry:
    """One indexed object instance inside a leaf node.

    ``stamp`` is only meaningful in the RUM-tree, where it is the globally
    unique insertion stamp used to tell the latest entry from obsolete
    entries.  Classic trees keep it at 0 and never serialise it.
    """

    __slots__ = ("rect", "oid", "stamp")

    def __init__(self, rect: Rect, oid: int, stamp: int = 0):
        self.rect = rect
        self.oid = oid
        self.stamp = stamp

    def __eq__(self, other) -> bool:
        if not isinstance(other, LeafEntry):
            return NotImplemented
        return (
            self.rect == other.rect
            and self.oid == other.oid
            and self.stamp == other.stamp
        )

    def __hash__(self) -> int:
        return hash((self.rect, self.oid, self.stamp))

    def __repr__(self) -> str:
        return f"LeafEntry({self.rect!r}, oid={self.oid}, stamp={self.stamp})"


class IndexEntry:
    """One directory entry: the MBR of a child node plus its page id."""

    __slots__ = ("rect", "child_id")

    def __init__(self, rect: Rect, child_id: int):
        self.rect = rect
        self.child_id = child_id

    def __eq__(self, other) -> bool:
        if not isinstance(other, IndexEntry):
            return NotImplemented
        return self.rect == other.rect and self.child_id == other.child_id

    def __hash__(self) -> int:
        return hash((self.rect, self.child_id))

    def __repr__(self) -> str:
        return f"IndexEntry({self.rect!r}, child={self.child_id})"


Entry = Union[LeafEntry, IndexEntry]


class Node:
    """One R-tree node, mapped 1:1 onto a disk page.

    The node does not know its parent: parent relationships live in the
    tree's in-memory parent directory (see DESIGN.md), which keeps leaf
    pages free of volatile back-pointers while still enabling the cleaner's
    bottom-up MBR adjustment.

    ``cached_bytes`` holds the exact on-disk page image of the node's
    current state when one is known (set by the codec on decode and by the
    buffer pool after an encode).  Invariant: any mutation of the node must
    clear it — :meth:`repro.storage.buffer.BufferPool.mark_dirty` does —
    so a non-``None`` value can always be written back verbatim, skipping
    a re-encode of never-dirtied pages.

    ``columns`` caches the node's coordinate column block (see
    :mod:`repro.kernels`): an immutable columnar snapshot of every entry
    MBR that the batch kernels consume.  It shares ``cached_bytes``'s
    invalidation contract exactly — ``mark_dirty`` clears both — so a
    non-``None`` block always reflects the current entry list.  Internal
    nodes amortise one block across many searches (they are pinned and
    rarely mutate); leaf blocks live for the duration of one operation.
    """

    __slots__ = (
        "page_id", "is_leaf", "entries", "prev_leaf", "next_leaf",
        "cached_bytes", "columns",
    )

    def __init__(
        self,
        page_id: int,
        is_leaf: bool,
        entries: Optional[List[Entry]] = None,
        prev_leaf: int = NO_PAGE,
        next_leaf: int = NO_PAGE,
    ):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.entries: List[Entry] = entries if entries is not None else []
        self.prev_leaf = prev_leaf
        self.next_leaf = next_leaf
        self.cached_bytes: Optional[bytes] = None
        self.columns: Optional[Any] = None

    def mbr(self) -> Rect:
        """The MBR covering all entries; raises on an empty node."""
        return Rect.union_all(e.rect for e in self.entries)

    def coord_block(self) -> Any:
        """The cached coordinate column block of this node's entry MBRs.

        Built on first use and memoised in ``columns`` until the next
        ``mark_dirty`` (see the class docstring for the invalidation
        contract).  All bulk kernel calls against this node — search
        masks, MINDIST scans, ChooseSubtree enlargements — consume this
        one snapshot.
        """
        block = self.columns
        if block is None:
            block = self.columns = kernels.block_from_entries(self.entries)
        return block

    def take(self, indices: Sequence[int]) -> List[Entry]:
        """The entries at ``indices``, in that order."""
        entries = self.entries
        return [entries[i] for i in indices]

    def __len__(self) -> int:
        return len(self.entries)

    def find_child_index(self, child_id: int) -> int:
        """Position of the directory entry pointing at ``child_id``.

        Raises ``KeyError`` when the child is not referenced by this node,
        which would indicate a corrupted parent directory.
        """
        for i, entry in enumerate(self.entries):
            if entry.child_id == child_id:
                return i
        raise KeyError(
            f"node {self.page_id} has no entry for child {child_id}"
        )

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "index"
        return (
            f"Node(page={self.page_id}, {kind}, entries={len(self.entries)})"
        )


class LazyNode(Node):
    """A leaf node whose entries are decoded on first access.

    The codec's lazy path parses only the 32-byte page header; the entry
    region stays raw in ``_page_bytes`` until something touches
    ``entries``.  Operations that never do — a query pruning the leaf via
    its parent MBR never even reads it, but also recovery walks, ring
    traversals, and entry-count checks (``len(node)``) — skip the full
    Python-object materialisation entirely.

    The raw source bytes are kept separately from ``cached_bytes``:
    ``mark_dirty`` clears the latter, but a header-only mutation (the leaf
    ring's prev/next pointers) leaves the entry region valid, so thawing
    from ``_page_bytes`` stays sound.  Replacing ``entries`` wholesale goes
    through the property setter, which detaches the raw bytes.

    While the node is unmaterialised, :meth:`coord_block` decodes the
    coordinate columns straight off the raw page bytes (one bulk kernel
    call, no entry objects) and :meth:`take` materialises only the
    requested entries — together they let a range query test a whole leaf
    and build objects for just the matches.
    """

    __slots__ = ("_entries", "_entry_count", "_codec", "_page_bytes")

    def __init__(
        self,
        page_id: int,
        is_leaf: bool,
        entry_count: int,
        prev_leaf: int,
        next_leaf: int,
        codec,
        page_bytes: bytes,
    ):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.prev_leaf = prev_leaf
        self.next_leaf = next_leaf
        self.cached_bytes = page_bytes
        self.columns = None
        self._entries: Optional[List[Entry]] = None
        self._entry_count = entry_count
        self._codec = codec
        self._page_bytes = page_bytes

    @property
    def entries(self) -> List[Entry]:
        entries = self._entries
        if entries is None:
            entries = self._entries = self._codec.decode_entries(
                self.is_leaf, self._entry_count, self._page_bytes
            )
        return entries

    @entries.setter
    def entries(self, value: List[Entry]) -> None:
        self._entries = value
        self._page_bytes = None
        self.columns = None

    def coord_block(self) -> Any:
        """Column block, decoded from the raw page bytes when possible.

        An unmaterialised leaf never builds entry objects for this: the
        codec lifts the coordinate columns out of the page image in one
        bulk call.  Once thawed (or rewritten), the block derives from the
        live entry list like any other node.
        """
        block = self.columns
        if block is None:
            if self._entries is None:
                block = self._codec.decode_block(
                    self._entry_count, self._page_bytes
                )
            else:
                block = kernels.block_from_entries(self._entries)
            self.columns = block
        return block

    def take(self, indices: Sequence[int]) -> List[Entry]:
        """The entries at ``indices``, materialising only those.

        On an unmaterialised leaf this decodes just the requested slots
        from the page image — the query hot path's selective
        materialisation; a thawed leaf answers from the entry list.
        """
        entries = self._entries
        if entries is None:
            return self._codec.decode_entries_at(self._page_bytes, indices)
        return [entries[i] for i in indices]

    @property
    def materialized(self) -> bool:
        """True once the entry list has been built (tests/introspection)."""
        return self._entries is not None

    def __len__(self) -> int:
        entries = self._entries
        return self._entry_count if entries is None else len(entries)


def leaf_capacity(node_size: int, entry_bytes: int) -> int:
    """Maximum number of leaf entries that fit a page of ``node_size`` bytes.

    The paper's Table 1 sweeps node sizes 1024–8192; the fanout falls out of
    this computation, e.g. 8192-byte pages hold 204 classic entries but only
    145 RUM entries.
    """
    capacity = (node_size - NODE_HEADER_BYTES) // entry_bytes
    if capacity < 4:
        raise ValueError(
            f"node size {node_size} too small for entry size {entry_bytes}"
        )
    return capacity


def index_capacity(node_size: int) -> int:
    """Maximum number of directory entries per internal page."""
    return leaf_capacity(node_size, INDEX_ENTRY_BYTES)
