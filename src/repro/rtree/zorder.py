"""Morton (Z-order) encoding over the unit square.

One 32-bit key per point: each coordinate is quantised to
:data:`ZORDER_BITS` bits and the two bit strings are interleaved, x in
the even positions and y in the odd (higher) positions.  Two properties
make the code load-bearing well beyond batch ordering:

* **Locality** — points close in space share long key prefixes, so
  sorting by key clusters spatially adjacent work (batch ingestion,
  :func:`repro.core.batch.plan_batch`).
* **Prefix regions are rectangles** — fixing the top ``b`` bits of a key
  fixes ``ceil(b/2)`` leading bits of y and ``floor(b/2)`` leading bits
  of x, so the set of points whose keys share a ``b``-bit prefix is an
  axis-aligned cell of a regular grid.  The sharded serving layer
  (:mod:`repro.serving`) exploits this: shard ``i`` of ``2**b`` is
  exactly the prefix cell :func:`shard_region` returns, which lets the
  router prune query fan-out with plain rectangle intersection.

Keys are total over arbitrary coordinates: anything outside ``[0, 1]``
clamps to the border cell.  The scalar functions are the single source
of truth; :func:`zorder_keys` bulk-encodes through
:mod:`repro.kernels` (vectorised under numpy, bit-identical scalar
fallback otherwise).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro import kernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .geometry import Rect

#: Hot-path marker for lint rule REP009: bulk encoding in this module
#: must go through :mod:`repro.kernels` (see docs/LINT.md).
HOT_PATH = True

#: Quantisation resolution of the Z-order key (bits per dimension).
ZORDER_BITS = 16

#: Total key width: two interleaved :data:`ZORDER_BITS` coordinates.
KEY_BITS = 2 * ZORDER_BITS

_ZMAX = (1 << ZORDER_BITS) - 1


def _part1by1(v: int) -> int:
    """Spread the low 16 bits of ``v`` into the even bit positions."""
    v &= 0xFFFF
    v = (v | (v << 8)) & 0x00FF00FF
    v = (v | (v << 4)) & 0x0F0F0F0F
    v = (v | (v << 2)) & 0x33333333
    v = (v | (v << 1)) & 0x55555555
    return v


def morton_key(cx: float, cy: float) -> int:
    """Morton code of the point ``(cx, cy)``, clamped to the unit square.

    Total over arbitrary floats: out-of-range values clamp to the
    border cell and NaN routes to the origin cell.
    """
    if cx != cx:  # NaN
        cx = 0.0
    if cy != cy:
        cy = 0.0
    qx = int(min(max(cx, 0.0), 1.0) * _ZMAX)
    qy = int(min(max(cy, 0.0), 1.0) * _ZMAX)
    return _part1by1(qx) | (_part1by1(qy) << 1)


def zorder_key(rect: "Rect") -> int:
    """Morton code of ``rect``'s centre, quantised to the unit square.

    Coordinates outside ``[0, 1]`` clamp to the border cell, so the key
    is total over arbitrary rectangles; equal keys simply tie.
    """
    return morton_key(
        (rect.xmin + rect.xmax) * 0.5, (rect.ymin + rect.ymax) * 0.5
    )


def zorder_keys(rects: Sequence["Rect"]) -> List[int]:
    """Bulk :func:`zorder_key` over many rectangles.

    Routed through the kernels backend (one vectorised pass under
    numpy); the result is bit-identical to the scalar loop by the
    kernels contract, so callers may mix the two freely.
    """
    return kernels.morton_keys(
        [(r.xmin + r.xmax) * 0.5 for r in rects],
        [(r.ymin + r.ymax) * 0.5 for r in rects],
    )


# ---------------------------------------------------------------------------
# Prefix regions (the sharding partition)
# ---------------------------------------------------------------------------


def shard_bits(n_shards: int) -> int:
    """Number of leading key bits that select among ``n_shards`` shards.

    ``n_shards`` must be a power of two no finer than the key's
    resolution; 1 shard means 0 bits (everything routes to shard 0).
    """
    if n_shards < 1 or n_shards & (n_shards - 1):
        raise ValueError(
            f"n_shards must be a power of two, got {n_shards}"
        )
    bits = n_shards.bit_length() - 1
    if bits > KEY_BITS:
        raise ValueError(
            f"n_shards {n_shards} exceeds the key resolution "
            f"(max {1 << KEY_BITS})"
        )
    return bits


def shard_for_key(key: int, bits: int) -> int:
    """Shard index of ``key``: its top ``bits`` bits."""
    if bits == 0:
        return 0
    return key >> (KEY_BITS - bits)


def shard_for_point(cx: float, cy: float, bits: int) -> int:
    """Shard index of the point ``(cx, cy)`` under a ``2**bits`` split."""
    return shard_for_key(morton_key(cx, cy), bits)


def shard_region(index: int, bits: int) -> Tuple[float, float, float, float]:
    """The axis-aligned cell of shard ``index`` under a ``2**bits`` split.

    Returns ``(xmin, ymin, xmax, ymax)`` in unit-square coordinates.
    The key interleaves y into the odd (higher) positions, so the
    leading prefix bits split the square alternately by y then x: 2
    shards are horizontal halves, 4 shards quadrants, 8 shards a 2x4
    grid, and so on.  Cells tile the square exactly; each cell is
    closed on its low edges and (conceptually) open on its high edges,
    except the border cells, which absorb the clamp overflow.
    """
    if bits < 0 or bits > KEY_BITS:
        raise ValueError(f"bits must be within [0, {KEY_BITS}]")
    if not 0 <= index < (1 << bits):
        raise ValueError(
            f"shard index {index} out of range for {1 << bits} shards"
        )
    y_bits = (bits + 1) // 2  # odd positions are consumed first
    x_bits = bits // 2
    # Deinterleave the prefix: reading the index MSB-first alternates
    # y, x, y, x, ...
    yi = 0
    xi = 0
    for b in range(bits):
        bit = (index >> (bits - 1 - b)) & 1
        if b % 2 == 0:
            yi = (yi << 1) | bit
        else:
            xi = (xi << 1) | bit
    x_span = 1.0 / (1 << x_bits)
    y_span = 1.0 / (1 << y_bits)
    return (xi * x_span, yi * y_span, (xi + 1) * x_span, (yi + 1) * y_span)


#: Worst-case skew between a cell's nominal boundary (``k * 2**-b``)
#: and its true quantised boundary: quantisation multiplies by ``_ZMAX``
#: (= 2**16 - 1), so the real edge sits at ``k * 2**(16-b) / _ZMAX``,
#: at most ``1 / _ZMAX`` to the right of the nominal one.
QUANT_SLACK = 1.0 / _ZMAX


def shards_for_window(window: "Rect", bits: int) -> List[int]:
    """All shard indices whose cell may hold a centre inside ``window``.

    Used by the query fan-out.  The test is deliberately one-sided safe
    (it may over-cover, never under-cover):

    * the window is clamped into the unit square first, mirroring the
      clamp :func:`morton_key` applies to every centre, so a window
      hanging past the border still selects the border cells that
      absorbed the clamped centres;
    * each cell is grown by :data:`QUANT_SLACK` to absorb the skew
      between nominal and quantised cell boundaries.

    Callers whose objects have spatial extent must grow ``window`` by
    the largest object half-extent before calling: an object is routed
    by its *centre*, but its rectangle can overlap a window from an
    adjacent cell.
    """
    wx1 = min(max(window.xmin, 0.0), 1.0)
    wy1 = min(max(window.ymin, 0.0), 1.0)
    wx2 = min(max(window.xmax, 0.0), 1.0)
    wy2 = min(max(window.ymax, 0.0), 1.0)
    hits: List[int] = []
    for index in range(1 << bits):
        xmin, ymin, xmax, ymax = shard_region(index, bits)
        if (
            wx1 <= xmax + QUANT_SLACK
            and xmin - QUANT_SLACK <= wx2
            and wy1 <= ymax + QUANT_SLACK
            and ymin - QUANT_SLACK <= wy2
        ):
            hits.append(index)
    return hits
