"""Sort-Tile-Recursive (STR) bulk loading.

Building a tree by repeated insertion is how the paper's experiments age
their indexes, but a production library also needs a fast initial build.
STR (Leutenegger et al.) packs a static set of rectangles bottom-up:

1. sort the entries by x-centre and cut them into ``S`` vertical slabs,
   where ``S = ceil(sqrt(N / capacity))``;
2. sort each slab by y-centre and chop it into full leaves;
3. repeat one level up on the leaf MBRs until a single root remains.

The loader works on a *fresh* tree of any variant: it writes the packed
leaf level through the buffer pool (one leaf write per created page),
maintains the doubly-linked leaf ring (the RUM-tree's cleaner needs it),
fills the parent directory, and leaves the tree ready for normal updates.
For a RUM-tree the caller's entries already carry stamps and the memo is
recorded by :func:`bulk_load_objects`.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from .base import RTreeBase
from .geometry import Rect
from .node import IndexEntry, LeafEntry, Node


def _tile(
    entries: Sequence, capacity: int, min_entries: int = 1
) -> List[List]:
    """STR tiling of entries (anything with ``.rect``) into groups of at
    most ``capacity`` and (when more than one group exists) at least
    ``min_entries`` — the trailing group of each slab is rebalanced from
    its predecessor so the packed tree honours the fanout lower bound."""
    n = len(entries)
    n_groups = -(-n // capacity)
    n_slabs = max(1, math.ceil(math.sqrt(n_groups)))
    per_slab = n_slabs * capacity
    by_x = sorted(entries, key=lambda e: e.rect.center()[0])
    groups: List[List] = []
    for s in range(0, n, per_slab):
        slab = sorted(
            by_x[s:s + per_slab], key=lambda e: e.rect.center()[1]
        )
        for g in range(0, len(slab), capacity):
            groups.append(list(slab[g:g + capacity]))
    if len(groups) > 1:
        for i in range(len(groups) - 1, 0, -1):
            deficit = min_entries - len(groups[i])
            if deficit > 0 and len(groups[i - 1]) - deficit >= min_entries:
                groups[i][:0] = groups[i - 1][-deficit:]
                del groups[i - 1][-deficit:]
    return groups


def str_bulk_load(tree: RTreeBase, entries: Iterable[LeafEntry]) -> None:
    """Pack ``entries`` into ``tree``, which must be empty.

    The target fill is 100% of capacity minus headroom for the minimum
    fill guarantee after the first few deletions; we pack to the full
    capacity like the original STR (updates rebalance naturally).
    """
    entries = list(entries)
    root = tree.buffer.get_node(tree.root_id)
    if tree.height != 1 or root.entries:
        raise ValueError("bulk load requires a freshly created tree")
    if not entries:
        return

    with tree.buffer.operation():
        # ------------------------------------------------ leaf level
        groups = _tile(entries, tree.leaf_cap, tree.min_leaf)
        if len(groups) == 1:
            root.entries = groups[0]
            tree.buffer.mark_dirty(root)
            return
        # Repurpose the empty root page as the first packed leaf so no
        # page is wasted.
        leaves: List[Node] = [root]
        for _ in range(len(groups) - 1):
            leaves.append(tree.buffer.new_node(is_leaf=True))
        for node, group in zip(leaves, groups):
            node.entries = group
        if tree.maintain_leaf_ring:
            for i, node in enumerate(leaves):
                node.prev_leaf = leaves[i - 1].page_id
                node.next_leaf = leaves[(i + 1) % len(leaves)].page_id
        for node in leaves:
            tree.buffer.mark_dirty(node)

        # ------------------------------------------------ index levels
        level_nodes: List[Node] = leaves
        height = 1
        while len(level_nodes) > 1:
            parent_entries = [
                IndexEntry(node.mbr(), node.page_id) for node in level_nodes
            ]
            groups = _tile(parent_entries, tree.index_cap, tree.min_index)
            parents = [
                tree.buffer.new_node(is_leaf=False) for _ in groups
            ]
            for parent, group in zip(parents, groups):
                parent.entries = group
                for entry in group:
                    tree.parent[entry.child_id] = parent.page_id
                tree.buffer.mark_dirty(parent)
            level_nodes = parents
            height += 1

        tree.root_id = level_nodes[0].page_id
        tree.parent.pop(tree.root_id, None)
        tree.height = height


def bulk_load_objects(
    tree, objects: Iterable[Tuple[int, Rect]]
) -> int:
    """Bulk-load ``(oid, rect)`` pairs into any of the three tree variants.

    Handles each variant's side structures: RUM-trees get stamped entries
    and memo records; FUR-trees get their secondary index filled (batched
    per bucket).  Returns the number of objects loaded.
    """
    pairs = list(objects)
    memo = getattr(tree, "memo", None)
    stamps = getattr(tree, "stamps", None)
    entries = []
    for oid, rect in pairs:
        stamp = stamps.next() if stamps is not None else 0
        if memo is not None:
            memo.record_update(oid, stamp)
        entries.append(LeafEntry(rect, oid, stamp))
    str_bulk_load(tree, entries)
    index = getattr(tree, "index", None)
    if index is not None:
        location = []
        for leaf in tree.iter_leaf_nodes():
            location.extend(
                (entry.oid, leaf.page_id) for entry in leaf.entries
            )
        index.assign_many(location)
    return len(pairs)
