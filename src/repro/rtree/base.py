"""Disk-based R-tree with R* insertion — the common substrate.

All three trees of the paper's evaluation (R*-tree, FUR-tree, RUM-tree) are
built on this class.  It implements:

* R* ChooseSubtree (overlap-minimising at the leaf-parent level, with the
  usual candidate-list optimisation) and the R* topological split with
  forced reinsertion;
* top-down deletion with Guttman's CondenseTree (underflowing nodes are
  dissolved and their entries reinserted);
* windowed range search;
* the doubly-linked circular **leaf ring** needed by the RUM-tree's
  cleaning tokens (Section 3.3.1), maintained through splits and condenses;
* an in-memory **parent directory** enabling bottom-up MBR adjustment (the
  RUM-tree cleaner and the FUR-tree both need to walk upwards from a leaf).

Every public operation wraps its page accesses in one buffer-pool operation
so that I/O is charged per the paper's model: each distinct leaf page costs
at most one read and one write per logical operation, internal nodes are
free (cached).
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import kernels
from repro.concurrency.locks import ReadWriteLock
from repro.storage.buffer import BufferPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.concurrency.racecheck import RaceChecker
    from repro.core.batch import BatchPlan, BatchResult
    from repro.obs import Observability
    from repro.obs.explain import ExplainReport

from .geometry import Rect
from .node import IndexEntry, LeafEntry, Node
from .split import choose_reinsert_entries, quadratic_split, rstar_split

#: Hot-path marker for lint rule REP009: bulk MBR predicates in this module
#: must go through :mod:`repro.kernels` (see docs/LINT.md).
HOT_PATH = True

SplitFunction = Callable[[Sequence, int], Tuple[list, list]]

#: Consecutive mutation-free range searches before a query mirror is built.
#: Hysteresis: mixed update/query phases never pay the build walk, while a
#: query burst (the paper's range-query experiments) amortises one build
#: over hundreds of windows.
MIRROR_QUERY_STREAK = 16

#: Capture sampling (``RTreeBase._obs_query_end`` / ``_obs_update_end``).
#: A sampled operation completing faster than the threshold doubles the
#: capture stride (up to the cap); a slow one resets it to 1.  Steady
#: state thus converges to one full capture per ``_OBS_QUERY_STRIDE_MAX``
#: operations, keeping the metrics-level overhead on microsecond-scale
#: operations inside the bench_micro budget, while any latency
#: regression snaps sampling back to full fidelity within one stride.
_OBS_QUERY_FAST_S = 1e-3
_OBS_QUERY_STRIDE_MAX = 256

_SPLIT_FUNCTIONS: Dict[str, SplitFunction] = {
    "rstar": rstar_split,
    "quadratic": quadratic_split,
}


class RTreeBase:
    """Height-balanced R-tree over a :class:`BufferPool`.

    Parameters
    ----------
    buffer:
        The storage stack (disk + codec + counters) this tree lives on.
    split:
        ``"rstar"`` (default) or ``"quadratic"``.
    forced_reinsert:
        Enable R* forced reinsertion on first overflow per level per
        operation (default on; the ablation benches switch it off).
    min_fill:
        Minimum node occupancy as a fraction of capacity (R* default 0.4).
    maintain_leaf_ring:
        Keep the circular doubly-linked leaf list up to date.  The RUM-tree
        needs it for cleaning tokens; the baselines leave it off to avoid
        charging them the ring-maintenance writes.
    choose_subtree_candidates:
        Size of the candidate list for the R* overlap-minimising
        ChooseSubtree at the leaf-parent level.
    attach:
        Adopt an existing on-disk tree instead of creating a fresh root:
        a dict with ``root_id``, ``height``, and ``parent`` (the parent
        directory).  Used by :mod:`repro.persistence` to re-open saved
        indexes.
    """

    def __init__(
        self,
        buffer: BufferPool,
        *,
        split: str = "rstar",
        forced_reinsert: bool = True,
        min_fill: float = 0.4,
        maintain_leaf_ring: bool = False,
        choose_subtree_candidates: int = 8,
        attach: Optional[Dict] = None,
    ):
        if split not in _SPLIT_FUNCTIONS:
            raise ValueError(f"unknown split policy {split!r}")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.buffer = buffer
        self.stats = buffer.stats
        self.split_fn: SplitFunction = _SPLIT_FUNCTIONS[split]
        self.forced_reinsert = forced_reinsert
        self.maintain_leaf_ring = maintain_leaf_ring
        self.choose_subtree_candidates = choose_subtree_candidates

        codec = buffer.codec
        self.leaf_cap = codec.leaf_cap
        self.index_cap = codec.index_cap
        self.min_leaf = max(2, min(int(self.leaf_cap * min_fill),
                                   self.leaf_cap // 2))
        self.min_index = max(2, min(int(self.index_cap * min_fill),
                                    self.index_cap // 2))

        #: child page id -> parent page id (root has no entry).
        self.parent: Dict[int, int] = {}

        #: Structure latch: writers (update / batch / clean) take it in
        #: write mode, range queries in read mode.  The concurrency
        #: harness (Section 3.5) serialises structural mutation behind
        #: it *after* acquiring granule locks — granule locks order
        #: strictly before the latch (see docs/CONCURRENCY.md).
        self.latch = ReadWriteLock()

        #: Eraser race detector handle (None = disabled, the default).
        self._rc: Optional["RaceChecker"] = None

        #: Query mirror state (see :mod:`repro.rtree.mirror`).  The mirror
        #: is valid only while its captured buffer version matches; the
        #: streak counts consecutive range searches at one version.
        self._mirror = None
        self._mirror_streak = 0
        self._mirror_streak_version = -1

        #: Observability handle (None = disabled).  The protocol entry
        #: points (update/query/kNN) guard on it, so the un-instrumented
        #: path costs one attribute load and a None check.
        self.obs: Optional["Observability"] = None
        self._obs_c_updates = None
        self._obs_c_queries = None
        self._obs_c_knn = None
        self._obs_h_update_io = None
        self._obs_h_query_io = None
        self._obs_c_batches = None
        self._obs_c_batch_ops = None
        self._obs_c_batch_deduped = None
        self._obs_c_batch_coalesced = None
        self._obs_h_batch_size = None
        #: Flight-recorder / drift instruments, bound in attach_obs.  The
        #: memo reference is populated by the RUM subclass (the baselines
        #: have no memo) so per-op memo lookup/hit deltas — read off the
        #: memo's unconditional plain-int tallies — ride every recorder
        #: record.
        self._obs_recorder = None
        self._obs_rec_memo = None
        self._obs_drift = None
        self._obs_drift_update = None
        self._obs_drift_query = None
        #: Capture-sampling state (see ``_obs_query_end`` and
        #: ``_obs_update_end``): every operation is counted, but only
        #: every ``stride``-th pays the full recorder/drift capture.
        #: The ``tick`` fields count down the ops remaining until the
        #: next sampled one.
        self._obs_qtick = 0
        self._obs_qstride = 1
        self._obs_utick = 0
        self._obs_ustride = 1
        #: Serving decision of the most recent range_search ("mirror" vs
        #: "traversal"); one boolean store per query on every path so the
        #: obs A/B comparison is unaffected.
        self._served_by_mirror = False

        if attach is not None:
            self.root_id = attach["root_id"]
            self.height = attach["height"]
            self.parent = dict(attach["parent"])
        else:
            with buffer.operation():
                root = buffer.new_node(is_leaf=True)
                root.prev_leaf = root.page_id
                root.next_leaf = root.page_id
            self.root_id = root.page_id
            self.height = 1

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    #: Histogram bounds for per-operation leaf I/O (operations cost a
    #: handful of page accesses; the tail catches pathological queries).
    _IO_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 128.0)

    #: Histogram bounds for ingestion batch sizes (powers of four).
    _BATCH_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0)

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Attach observability to this tree and its whole storage stack.

        Cascades to the buffer pool (and through it, the disk manager);
        subclasses extend the cascade to the memo, the cleaner, the WAL,
        or the secondary index.  Passing ``None`` — or an instance at
        level ``off`` — detaches everything.
        """
        enabled = obs is not None and obs.enabled
        self.obs = obs if enabled else None
        self.buffer.attach_obs(obs if enabled else None)
        if enabled and obs.metrics_on:
            reg = obs.registry
            self._obs_c_updates = reg.counter("tree.updates")
            self._obs_c_queries = reg.counter("tree.queries")
            self._obs_c_knn = reg.counter("tree.knn_queries")
            self._obs_h_update_io = reg.histogram(
                "tree.update_leaf_io", self._IO_BUCKETS
            )
            self._obs_h_query_io = reg.histogram(
                "tree.query_leaf_io", self._IO_BUCKETS
            )
            reg.gauge("tree.height").set_function(lambda: self.height)
            self._obs_c_batches = reg.counter("tree.batches")
            self._obs_c_batch_ops = reg.counter("tree.batch_ops")
            self._obs_c_batch_deduped = reg.counter("tree.batch_deduped")
            self._obs_c_batch_coalesced = reg.counter(
                "tree.batch_coalesced_writes"
            )
            self._obs_h_batch_size = reg.histogram(
                "tree.batch_size", self._BATCH_BUCKETS
            )
            # Flight recorder + drift monitor (always on at metrics and
            # above; the hot path reaches them only through these bound
            # references — lint rule REP010).
            self._obs_recorder = obs.recorder
            from repro.obs.drift import DriftMonitor

            self._obs_drift = DriftMonitor(reg)
            self._obs_drift_update = self._obs_drift.track(
                "update", self._drift_update_predicted
            )
            self._obs_drift_query = self._obs_drift.track(
                "query", self._drift_query_predicted
            )
            self._obs_qtick = 0
            self._obs_qstride = 1
            self._obs_utick = 0
            self._obs_ustride = 1
        else:
            # Queries skipped since the last sampled one have not been
            # counted yet; settle the balance before dropping the counter.
            # (Updates need no settlement: their counter and histogram
            # are exact per-op on the unsampled path too.)
            pending = self._obs_qstride - 1 - self._obs_qtick
            if pending > 0 and self._obs_c_queries is not None:
                self._obs_c_queries.inc(pending)
            self._obs_qtick = 0
            self._obs_qstride = 1
            self._obs_utick = 0
            self._obs_ustride = 1
            self._obs_c_updates = self._obs_c_queries = None
            self._obs_c_knn = None
            self._obs_h_update_io = self._obs_h_query_io = None
            self._obs_c_batches = self._obs_c_batch_ops = None
            self._obs_c_batch_deduped = None
            self._obs_c_batch_coalesced = None
            self._obs_h_batch_size = None
            self._obs_recorder = None
            self._obs_rec_memo = None
            self._obs_drift = None
            self._obs_drift_update = self._obs_drift_query = None

    def attach_racecheck(self, checker: Optional["RaceChecker"]) -> None:
        """Attach the Eraser race detector to the tree and its storage.

        Mirrors :meth:`attach_obs`: cascades to the buffer pool, and
        subclasses extend the cascade (memo, stamp counter).  Passing
        ``None`` detaches everywhere, restoring the probe-free path.
        """
        self._rc = checker
        self.buffer.attach_racecheck(checker)

    # -- per-operation capture (flight recorder + drift feed) --------------

    def _obs_op_begin(self):
        """Capture the op's starting state; cheap by design.

        Called only on the enabled path (``self.obs`` is not ``None``
        implies ``metrics_on``, so the recorder is bound).  Raw counter
        reads instead of ``stats.snapshot()`` keep the per-op cost to a
        ``perf_counter`` call plus attribute loads.
        """
        s = self.stats
        m = self._obs_rec_memo
        return (
            time.perf_counter(),
            s.leaf_reads,
            s.leaf_writes,
            s.internal_reads,
            s.internal_writes,
            s.index_reads,
            s.index_writes,
            s.log_writes,
            s.log_reads,
            s.memo_reads,
            s.memo_writes,
            0 if m is None else m.lookup_count,
            0 if m is None else m.hit_count,
        )

    def _obs_op_end(
        self, begin, kind, counter, histogram, tracker, served="-",
        window=None,
    ) -> None:
        """Account one finished operation (enabled path only).

        Feeds the op counter, the per-op leaf-I/O histogram, the flight
        recorder, and — for update/query — the drift monitor's measured
        EWMA.  The I/O delta is computed once from the raw counters
        captured by :meth:`_obs_op_begin`.
        """
        s = self.stats
        dur_s = time.perf_counter() - begin[0]
        io10 = (
            s.leaf_reads - begin[1],
            s.leaf_writes - begin[2],
            s.internal_reads - begin[3],
            s.internal_writes - begin[4],
            s.index_reads - begin[5],
            s.index_writes - begin[6],
            s.log_writes - begin[7],
            s.log_reads - begin[8],
            s.memo_reads - begin[9],
            s.memo_writes - begin[10],
        )
        if counter is not None:
            counter.value += 1
        if histogram is not None:
            # Inlined Histogram.observe — this runs once per update, and
            # the method-call overhead is measurable against the <2%
            # metrics-level budget enforced by bench_micro.
            leaf_io = io10[0] + io10[1]
            histogram.counts[bisect_left(histogram.buckets, leaf_io)] += 1
            histogram.count += 1
            histogram.total += leaf_io
        m = self._obs_rec_memo
        self._obs_recorder.record(
            kind,
            self.name,
            dur_s,
            io10,
            0 if m is None else m.lookup_count - begin[11],
            0 if m is None else m.hit_count - begin[12],
            served,
        )
        if tracker is not None:
            if window is not None:
                tracker.observe_window(
                    window.xmax - window.xmin, window.ymax - window.ymin
                )
            # Counted I/O per the paper's model: leaf + index + log + memo.
            tracker.observe(
                io10[0] + io10[1] + io10[4] + io10[5] + io10[6] + io10[7]
                + io10[8] + io10[9]
            )

    def _obs_query_end(self, begin, window) -> None:
        """Account one *sampled* range query.

        Queries are the only operation class fast enough (microseconds at
        mirror steady state) that full per-op capture breaks the <2%
        metrics-level overhead budget, so the search wrappers count down
        ``_obs_qtick`` and only every ``_obs_qstride``-th query lands
        here.  The counter increment covers this query plus the skipped
        ones, so ``tree.queries`` is exact at every sample boundary (and
        at detach, which settles the remainder); histogram, recorder and
        drift feeds see the sampled queries only.  At ``trace`` level the
        stride never widens, so every query is recorded.
        """
        s = self.stats
        dur_s = time.perf_counter() - begin[0]
        io10 = (
            s.leaf_reads - begin[1],
            s.leaf_writes - begin[2],
            s.internal_reads - begin[3],
            s.internal_writes - begin[4],
            s.index_reads - begin[5],
            s.index_writes - begin[6],
            s.log_writes - begin[7],
            s.log_reads - begin[8],
            s.memo_reads - begin[9],
            s.memo_writes - begin[10],
        )
        stride = self._obs_qstride
        self._obs_c_queries.value += stride
        hist = self._obs_h_query_io
        leaf_io = io10[0] + io10[1]
        hist.counts[bisect_left(hist.buckets, leaf_io)] += 1
        hist.count += 1
        hist.total += leaf_io
        m = self._obs_rec_memo
        self._obs_recorder.record(
            "query",
            self.name,
            dur_s,
            io10,
            0 if m is None else m.lookup_count - begin[11],
            0 if m is None else m.hit_count - begin[12],
            "mirror" if self._served_by_mirror else "traversal",
        )
        tracker = self._obs_drift_query
        tracker.observe_window(
            window.xmax - window.xmin, window.ymax - window.ymin
        )
        tracker.observe(
            io10[0] + io10[1] + io10[4] + io10[5] + io10[6] + io10[7]
            + io10[8] + io10[9]
        )
        if self.obs.tracing:
            return
        if dur_s < _OBS_QUERY_FAST_S:
            if stride < _OBS_QUERY_STRIDE_MAX:
                stride *= 2
                self._obs_qstride = stride
        elif stride != 1:
            stride = 1
            self._obs_qstride = 1
        self._obs_qtick = stride - 1

    def _obs_update_lite(self, lio0) -> None:
        """Account one *unsampled* update: counter + leaf-I/O histogram.

        Unlike queries, the update counter and histogram stay exact on
        every operation — both are pure I/O accounting that needs no
        clock and touches three small hot objects, so the per-op cost is
        a few hundred nanoseconds.  What the unsampled path skips is the
        expensive capture: ``perf_counter`` calls, the 10-field I/O
        delta, the flight-recorder record, and the drift EWMA feed,
        whose working set is large enough that paying it every update
        breaks the <2% metrics-level budget (``bench_micro`` A/B).
        ``lio0`` is ``stats.leaf_reads + stats.leaf_writes`` captured by
        the wrapper before the operation body ran.
        """
        s = self.stats
        self._obs_c_updates.value += 1
        h = self._obs_h_update_io
        v = s.leaf_reads + s.leaf_writes - lio0
        h.counts[bisect_left(h.buckets, v)] += 1
        h.count += 1
        h.total += v

    def _obs_update_end(self, begin) -> None:
        """Account one *sampled* update (full capture + stride control).

        Mirrors :meth:`_obs_query_end`: every ``_obs_ustride``-th update
        lands here and feeds the recorder, the drift monitor, and the
        exact counter/histogram; the ops in between go through
        :meth:`_obs_update_lite`.  A sampled update faster than
        ``_OBS_QUERY_FAST_S`` doubles the stride (slow-op detection and
        recorder coverage degrade gracefully to one op in
        ``_OBS_QUERY_STRIDE_MAX``); a slow one resets it, and at
        ``trace`` level the stride never widens so every update is
        recorded.
        """
        s = self.stats
        dur_s = time.perf_counter() - begin[0]
        io10 = (
            s.leaf_reads - begin[1],
            s.leaf_writes - begin[2],
            s.internal_reads - begin[3],
            s.internal_writes - begin[4],
            s.index_reads - begin[5],
            s.index_writes - begin[6],
            s.log_writes - begin[7],
            s.log_reads - begin[8],
            s.memo_reads - begin[9],
            s.memo_writes - begin[10],
        )
        self._obs_c_updates.value += 1
        hist = self._obs_h_update_io
        leaf_io = io10[0] + io10[1]
        hist.counts[bisect_left(hist.buckets, leaf_io)] += 1
        hist.count += 1
        hist.total += leaf_io
        m = self._obs_rec_memo
        self._obs_recorder.record(
            "update",
            self.name,
            dur_s,
            io10,
            0 if m is None else m.lookup_count - begin[11],
            0 if m is None else m.hit_count - begin[12],
            "-",
        )
        tracker = self._obs_drift_update
        if tracker is not None:
            tracker.observe(
                io10[0] + io10[1] + io10[4] + io10[5] + io10[6] + io10[7]
                + io10[8] + io10[9]
            )
        stride = self._obs_ustride
        if self.obs.tracing:
            return
        if dur_s < _OBS_QUERY_FAST_S:
            if stride < _OBS_QUERY_STRIDE_MAX:
                stride *= 2
                self._obs_ustride = stride
        elif stride != 1:
            stride = 1
            self._obs_ustride = 1
        self._obs_utick = stride - 1

    # -- drift predictors (overridden per tree type) -----------------------

    def _drift_update_predicted(self, tracker) -> float:
        """Model-expected counted I/O per update at current tree state.

        Base trees update top-down (Section 4.2.1); subclasses override
        with their own closed forms.  Evaluated lazily at gauge read, so
        the O(leaves) MBR walk never runs on the update path.
        """
        from repro.analysis.cost_model import expected_topdown_update_io

        return expected_topdown_update_io(self.leaf_mbr_sides())

    def _drift_query_predicted(self, tracker) -> float:
        """Model-expected leaf reads per range query, evaluated at the
        workload's observed (EWMA) window extents."""
        from repro.analysis.cost_model import expected_query_leaf_io

        if tracker.window_samples == 0:
            return 0.0
        return expected_query_leaf_io(
            self.leaf_mbr_sides(), tracker.window_w, tracker.window_h
        )

    def drift_report(self) -> List[Dict[str, object]]:
        """Cost-model drift rows of this tree — one dict per tracked op
        class (see :class:`repro.obs.drift.DriftMonitor`); empty when
        observability is off."""
        if self._obs_drift is None:
            return []
        return [dict(row) for row in self._obs_drift.rows()]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, oid: int, stamp: int = 0) -> None:
        """Insert one object entry (1 leaf read + 1 leaf write typically)."""
        with self.buffer.operation():
            self._insert(LeafEntry(rect, oid, stamp), 0, set())

    def _insert(self, entry, level: int, reinserted: Set[int]) -> Node:
        """Insert ``entry`` into some node at ``level``; returns that node."""
        node = self._choose_node(entry.rect, level)
        node.entries.append(entry)
        if not node.is_leaf:
            self.parent[entry.child_id] = node.page_id
        self.buffer.mark_dirty(node)
        if node.is_leaf:
            self._on_entry_placed(node, entry)
        self._adjust_upward(node)
        self._handle_overflow(node, level, reinserted)
        return node

    def _on_entry_placed(self, node: Node, entry: LeafEntry) -> None:
        """Hook: ``entry`` was just placed into leaf ``node``.

        Called *before* overflow handling, so a subclass tracking entry
        locations (the FUR-tree's secondary index) sees relocations caused
        by splits/reinserts afterwards and ends up with the final leaf.
        """

    # ------------------------------------------------------------------
    # Batched ingestion (generic fallback)
    # ------------------------------------------------------------------

    def apply_batch(self, ops: Iterable[Sequence]) -> "BatchResult":
        """Apply a batch of ``("insert"|"update"|"delete", oid, ...)`` ops.

        Generic fallback shared by the baselines for like-for-like
        comparison with the RUM-tree's memo-native override: the batch is
        deduplicated per oid (last write wins), the surviving insertions
        are Z-ordered for locality, and everything runs inside one
        buffer batch scope so repeat leaf touches coalesce into a single
        ordered writeback.  The per-operation *structural* work — a
        top-down delete per update, here — is unchanged; only the
        plumbing is amortised.  See :mod:`repro.core.batch` for the op
        format and :class:`~repro.core.batch.BatchResult` for the return
        value.
        """
        from repro.core.batch import plan_batch

        plan = plan_batch(ops)
        obs = self.obs
        if obs is None:
            return self._apply_batch_plan(plan)
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span(
                "update_batch", io=self.stats, tree=self.name,
                ops=plan.total_ops, deduped=plan.deduped,
            ):
                result = self._apply_batch_plan(plan)
        else:
            result = self._apply_batch_plan(plan)
        self._obs_record_batch(result)
        self._obs_op_end(begin, "batch", None, None, None)
        return result

    def _apply_batch_plan(self, plan: "BatchPlan") -> "BatchResult":
        """Sequentially replay a batch plan inside one batch scope."""
        from repro.core.batch import BatchResult

        with self.buffer.batch_scope() as scope:
            for d in plan.deletes:
                self.delete_object(d.oid, d.old_rect)
            for u in plan.upserts:
                if u.old_rect is None:
                    self.insert_object(u.oid, u.rect)
                else:
                    self.update_object(u.oid, u.old_rect, u.rect)
        return BatchResult(
            total_ops=plan.total_ops,
            applied=plan.surviving,
            deduped=plan.deduped,
            inserts=len(plan.upserts),
            deletes=len(plan.deletes),
            write_marks=scope.write_marks,
            pages_written=scope.pages_written,
        )

    def _obs_record_batch(self, result: "BatchResult") -> None:
        """Account one finished batch (enabled path only)."""
        if self._obs_c_batches is not None:
            self._obs_c_batches.inc()
            self._obs_c_batch_ops.inc(result.total_ops)
            self._obs_c_batch_deduped.inc(result.deduped)
            self._obs_c_batch_coalesced.inc(result.coalesced_writes)
            self._obs_h_batch_size.observe(float(result.total_ops))

    def _choose_node(self, rect: Rect, level: int) -> Node:
        """Descend from the root to a node at ``level`` (leaves = level 0)."""
        if level >= self.height:
            raise ValueError(
                f"target level {level} but tree height is {self.height}"
            )
        node = self.buffer.get_node(self.root_id)
        current = self.height - 1
        while current > level:
            idx = self._choose_child_index(node, rect, current == 1)
            node = self.buffer.get_node(node.entries[idx].child_id)
            current -= 1
        return node

    def _choose_child_index(
        self, node: Node, rect: Rect, leaf_children: bool
    ) -> int:
        """R* ChooseSubtree.

        At the level directly above the leaves the R*-tree minimises
        *overlap enlargement* over a candidate list of least-enlargement
        children; everywhere else it minimises area enlargement (ties by
        area).
        """
        n = len(node.entries)
        if n == 1:
            return 0
        rx1, ry1, rx2, ry2 = rect.xmin, rect.ymin, rect.xmax, rect.ymax
        block = node.coord_block()
        enls, node_areas = kernels.enlargements(block, rx1, ry1, rx2, ry2)
        if not leaf_children:
            return min(zip(enls, node_areas, range(n)))[2]

        ranked = sorted(zip(enls, node_areas, range(n)))
        if ranked[0][0] == 0.0:
            # The new rect fits a child MBR without growing it: that child
            # cannot increase any overlap, so (overlap-delta, enlargement,
            # area) is already minimal for the least-area such child.
            return ranked[0][2]
        candidates = ranked[: self.choose_subtree_candidates]
        best_idx = candidates[0][2]
        best_key: Optional[Tuple[float, float, float]] = None
        for enlargement, area, i in candidates:
            ex1, ey1, ex2, ey2 = kernels.block_get(block, i)
            nx1 = ex1 if ex1 < rx1 else rx1
            ny1 = ey1 if ey1 < ry1 else ry1
            nx2 = ex2 if ex2 > rx2 else rx2
            ny2 = ey2 if ey2 > ry2 else ry2
            overlap_delta = kernels.overlap_delta(
                block, i, nx1, ny1, nx2, ny2
            )
            key = (overlap_delta, enlargement, area)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        return best_idx

    def _handle_overflow(
        self, node: Node, level: int, reinserted: Set[int]
    ) -> None:
        cap = self.leaf_cap if node.is_leaf else self.index_cap
        if len(node.entries) <= cap:
            return
        if (
            self.forced_reinsert
            and level not in reinserted
            and node.page_id != self.root_id
        ):
            reinserted.add(level)
            keep, evicted = choose_reinsert_entries(node.entries)
            node.entries = keep
            self.buffer.mark_dirty(node)
            self._adjust_upward(node)
            for entry in evicted:
                self._insert(entry, level, reinserted)
        else:
            self._split_node(node, level, reinserted)

    def _split_node(
        self, node: Node, level: int, reinserted: Set[int]
    ) -> Node:
        """Split an overflowing node; returns the new sibling."""
        min_entries = self.min_leaf if node.is_leaf else self.min_index
        left, right = self.split_fn(node.entries, min_entries)
        node.entries = left
        sibling = self.buffer.new_node(node.is_leaf)
        sibling.entries = right
        self.buffer.mark_dirty(node)
        self.buffer.mark_dirty(sibling)
        if node.is_leaf:
            if self.maintain_leaf_ring:
                self._link_leaf_after(node, sibling)
            self._on_leaf_split(node, sibling)
        else:
            for entry in right:
                self.parent[entry.child_id] = sibling.page_id

        if node.page_id == self.root_id:
            new_root = self.buffer.new_node(is_leaf=False)
            new_root.entries = [
                IndexEntry(node.mbr(), node.page_id),
                IndexEntry(sibling.mbr(), sibling.page_id),
            ]
            self.buffer.mark_dirty(new_root)
            self.parent[node.page_id] = new_root.page_id
            self.parent[sibling.page_id] = new_root.page_id
            self.root_id = new_root.page_id
            self.height += 1
        else:
            parent = self.buffer.get_node(self.parent[node.page_id])
            idx = parent.find_child_index(node.page_id)
            parent.entries[idx] = IndexEntry(node.mbr(), node.page_id)
            parent.entries.append(IndexEntry(sibling.mbr(), sibling.page_id))
            self.parent[sibling.page_id] = parent.page_id
            self.buffer.mark_dirty(parent)
            self._adjust_upward(parent)
            self._handle_overflow(parent, level + 1, reinserted)
        return sibling

    def _on_leaf_split(self, node: Node, sibling: Node) -> None:
        """Hook for subclasses (the RUM-tree cleans both halves for free;
        the FUR-tree repairs its secondary index)."""

    # ------------------------------------------------------------------
    # Bottom-up MBR adjustment
    # ------------------------------------------------------------------

    def _adjust_upward(self, node: Node) -> None:
        """Propagate ``node``'s exact MBR into its ancestors' entries.

        Internal nodes are memory-cached, so this walk is free in the
        paper's leaf-I/O metric, matching Section 3.3's "the MBRs of its
        ancestor nodes are adjusted".
        """
        current = node
        while current.page_id != self.root_id:
            parent = self.buffer.get_node(self.parent[current.page_id])
            idx = parent.find_child_index(current.page_id)
            new_mbr = current.mbr()
            if parent.entries[idx].rect == new_mbr:
                return
            parent.entries[idx] = IndexEntry(new_mbr, current.page_id)
            self.buffer.mark_dirty(parent)
            current = parent

    # ------------------------------------------------------------------
    # Leaf ring (Section 3.3.1)
    # ------------------------------------------------------------------

    def _link_leaf_after(self, node: Node, new_leaf: Node) -> None:
        """Insert ``new_leaf`` into the circular ring right after ``node``."""
        new_leaf.prev_leaf = node.page_id
        new_leaf.next_leaf = node.next_leaf
        if node.next_leaf == node.page_id:
            node.prev_leaf = new_leaf.page_id
            node.next_leaf = new_leaf.page_id
        else:
            successor = self.buffer.get_node(node.next_leaf)
            successor.prev_leaf = new_leaf.page_id
            self.buffer.mark_dirty(successor)
            node.next_leaf = new_leaf.page_id
        self.buffer.mark_dirty(node)
        self.buffer.mark_dirty(new_leaf)

    def _unlink_leaf(self, node: Node) -> None:
        """Remove ``node`` from the circular ring (it is being dissolved)."""
        if node.next_leaf == node.page_id:
            return  # sole member; the ring dies with it
        predecessor = self.buffer.get_node(node.prev_leaf)
        successor = self.buffer.get_node(node.next_leaf)
        predecessor.next_leaf = node.next_leaf
        successor.prev_leaf = node.prev_leaf
        self.buffer.mark_dirty(predecessor)
        self.buffer.mark_dirty(successor)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def range_search(self, window: Rect) -> List[LeafEntry]:
        """All leaf entries whose MBR intersects ``window``.

        For the RUM-tree this is the *raw* answer set that the Update Memo
        then filters (Section 3.2.3); for the other trees it is the final
        answer.

        Each visited node is tested with one bulk kernel call over its
        coordinate column block; matching leaf entries are materialised
        selectively, so a leaf with no hits never builds a single Python
        object.

        After :data:`MIRROR_QUERY_STREAK` consecutive mutation-free range
        searches the tree builds a :class:`~repro.rtree.mirror.QueryMirror`
        and answers from it instead of descending — same entries, and the
        same buffered leaf reads are still charged (one per leaf whose
        directory entry intersects the window), so every I/O metric is
        unchanged.  Any mutation invalidates the mirror via the buffer
        version counter.  Entry *order* may differ between the two paths;
        both are deterministic, neither is part of the API.
        """
        buffer = self.buffer
        wx1, wy1 = window.xmin, window.ymin
        wx2, wy2 = window.xmax, window.ymax
        version = buffer.version
        mirror = self._mirror
        if mirror is None or mirror.version != version:
            self._mirror = mirror = None
            if version != self._mirror_streak_version:
                self._mirror_streak_version = version
                self._mirror_streak = 1
            else:
                self._mirror_streak += 1
                if self._mirror_streak >= MIRROR_QUERY_STREAK:
                    from .mirror import build_mirror

                    self._mirror = mirror = build_mirror(
                        buffer, self.root_id
                    )
        self._served_by_mirror = mirror is not None
        if mirror is not None:
            leaf_ids, results = mirror.search(wx1, wy1, wx2, wy2)
            if buffer.in_operation:
                # Inside an outer operation the charged reads must land in
                # its cache so later touches of the same leaves stay free.
                get_node = buffer.get_node
                for page_id in leaf_ids:
                    get_node(page_id)
            else:
                buffer.charge_leaf_reads(leaf_ids)
            return results
        results: List[LeafEntry] = []
        with buffer.operation():
            stack = [self.root_id]
            while stack:
                node = buffer.get_node(stack.pop())
                hits = kernels.intersect_indices(
                    node.coord_block(), wx1, wy1, wx2, wy2
                )
                if not hits:
                    continue
                if node.is_leaf:
                    results.extend(node.take(hits))
                else:
                    entries = node.entries
                    stack.extend(entries[i].child_id for i in hits)
        return results

    def nearest_entries(self, x: float, y: float, k: int) -> List[LeafEntry]:
        """The ``k`` leaf entries nearest to ``(x, y)`` (best-first search).

        Classic incremental nearest-neighbour over the R-tree using the
        MINDIST lower bound: internal entries are expanded in distance
        order, so only leaves that can still contribute are read.  For the
        RUM-tree this is a raw candidate stream that the memo then filters
        (see :meth:`repro.core.rum.RUMTree.nearest_neighbors`).
        """
        if k <= 0:
            return []
        results: List[LeafEntry] = []
        for entry, _dist in self.iter_nearest(x, y):
            results.append(entry)
            if len(results) == k:
                break
        return results

    def iter_nearest(
        self, x: float, y: float
    ) -> Iterator[Tuple[LeafEntry, float]]:
        """Yield ``(leaf entry, distance)`` pairs in increasing distance.

        The traversal is lazy: each ``next()`` performs only the node
        reads needed to guarantee the next entry is globally nearest,
        which is what lets a filtered consumer (the RUM-tree) pull extra
        candidates only when obsolete entries were skipped.

        The heap orders by *squared* MINDIST (one bulk kernel call per
        visited node) — identical ordering, no per-entry ``hypot`` — and
        leaf entries stay as ``(node, slot)`` references until popped, so
        only entries that actually surface are materialised.
        """
        import heapq
        import math

        counter = 0  # tie-breaker so heap items never compare by payload
        heap: List[Tuple[float, int, bool, object]] = [
            (0.0, counter, False, self.root_id)
        ]
        with self.buffer.operation():
            while heap:
                dist_sq, _tie, is_entry, payload = heapq.heappop(heap)
                if is_entry:
                    leaf, slot = payload
                    yield leaf.take((slot,))[0], math.sqrt(dist_sq)
                    continue
                # Pages are only read when their heap item is popped, so
                # leaves beyond the k-th neighbour's distance cost nothing.
                node = self.buffer.get_node(payload)
                dists = kernels.min_dist_sq(node.coord_block(), x, y)
                if node.is_leaf:
                    for i, d in enumerate(dists):
                        counter += 1
                        heapq.heappush(heap, (d, counter, True, (node, i)))
                else:
                    entries = node.entries
                    for i, d in enumerate(dists):
                        counter += 1
                        heapq.heappush(
                            heap, (d, counter, False, entries[i].child_id)
                        )

    # ------------------------------------------------------------------
    # Top-down deletion (the classic R-tree update path)
    # ------------------------------------------------------------------

    def delete(self, oid: int, rect: Rect) -> bool:
        """Search-and-delete the entry for ``oid`` with known MBR ``rect``.

        This is the expensive half of the *top-down* update approach
        (Figure 1a): the search may follow multiple paths because only
        nodes whose MBR fully contains ``rect`` can hold the entry.
        Returns False when no matching entry exists.
        """
        with self.buffer.operation():
            found = self._find_leaf_entry(oid, rect)
            if found is None:
                return False
            leaf, idx = found
            del leaf.entries[idx]
            self.buffer.mark_dirty(leaf)
            self._condense(leaf)
            return True

    def _find_leaf_entry(
        self, oid: int, rect: Rect
    ) -> Optional[Tuple[Node, int]]:
        rx1, ry1 = rect.xmin, rect.ymin
        rx2, ry2 = rect.xmax, rect.ymax
        stack = [self.root_id]
        while stack:
            node = self.buffer.get_node(stack.pop())
            if node.is_leaf:
                for i, entry in enumerate(node.entries):
                    if entry.oid == oid and entry.rect == rect:
                        return node, i
            else:
                hits = kernels.contain_indices(
                    node.coord_block(), rx1, ry1, rx2, ry2
                )
                if hits:
                    entries = node.entries
                    stack.extend(entries[i].child_id for i in hits)
        return None

    def _condense(self, leaf: Node) -> None:
        """Guttman's CondenseTree: dissolve underflowing nodes upwards and
        reinsert their orphaned entries at their original levels."""
        orphans: List[Tuple[int, list]] = []
        node = leaf
        level = 0
        while node.page_id != self.root_id:
            parent = self.buffer.get_node(self.parent[node.page_id])
            min_entries = self.min_leaf if node.is_leaf else self.min_index
            if len(node.entries) < min_entries:
                idx = parent.find_child_index(node.page_id)
                del parent.entries[idx]
                self.buffer.mark_dirty(parent)
                if node.entries:
                    orphans.append((level, list(node.entries)))
                if node.is_leaf and self.maintain_leaf_ring:
                    self._unlink_leaf(node)
                self._on_leaf_dissolved(node)
                self.parent.pop(node.page_id, None)
                self.buffer.free_node(node)
            else:
                new_idx = parent.find_child_index(node.page_id)
                parent.entries[new_idx] = IndexEntry(
                    node.mbr(), node.page_id
                )
                self.buffer.mark_dirty(parent)
            node = parent
            level += 1
        self._shrink_root()
        reinserted: Set[int] = set()
        # Higher-level orphans first so the tree regains height before any
        # leaf entries are routed through it.
        for orphan_level, entries in sorted(orphans, reverse=True):
            for entry in entries:
                target = min(orphan_level, self.height - 1)
                if target != orphan_level:
                    # The tree shrank below the orphan's level: flatten the
                    # orphaned subtree into leaf entries (rare; keeps the
                    # structure sound).
                    for leaf_entry in self._collect_leaf_entries(entry):
                        self._insert(leaf_entry, 0, reinserted)
                else:
                    self._insert(entry, target, reinserted)

    def _on_leaf_dissolved(self, node: Node) -> None:
        """Hook for subclasses (the FUR-tree must re-point its secondary
        index at reinsertion time; the RUM cleaner re-homes its tokens)."""

    def _collect_leaf_entries(self, entry: IndexEntry) -> List[LeafEntry]:
        """All leaf entries beneath an orphaned directory entry."""
        collected: List[LeafEntry] = []
        stack = [entry.child_id]
        pages = []
        while stack:
            node = self.buffer.get_node(stack.pop())
            pages.append(node)
            if node.is_leaf:
                collected.extend(node.entries)
            else:
                stack.extend(e.child_id for e in node.entries)
        for node in pages:
            if node.is_leaf:
                if self.maintain_leaf_ring:
                    self._unlink_leaf(node)
                self._on_leaf_dissolved(node)
            self.parent.pop(node.page_id, None)
            self.buffer.free_node(node)
        return collected

    def _shrink_root(self) -> None:
        while True:
            root = self.buffer.get_node(self.root_id)
            if root.is_leaf or len(root.entries) > 1:
                break
            if not root.entries:
                # Everything was deleted: restart with an empty leaf root.
                self.buffer.free_node(root)
                with self.buffer.operation():
                    new_root = self.buffer.new_node(is_leaf=True)
                    new_root.prev_leaf = new_root.page_id
                    new_root.next_leaf = new_root.page_id
                self.root_id = new_root.page_id
                self.height = 1
                return
            child_id = root.entries[0].child_id
            self.buffer.free_node(root)
            self.parent.pop(child_id, None)
            self.root_id = child_id
            self.height -= 1

    # ------------------------------------------------------------------
    # Introspection (tests, metrics, cost model)
    # ------------------------------------------------------------------

    def iter_leaf_nodes(self) -> Iterator[Node]:
        """Yield every leaf node **without charging any I/O**.

        Metrics and invariant checks use this; operational code must go
        through the buffer pool instead.
        """
        stack = [self.root_id]
        while stack:
            node = self._peek_node(stack.pop())
            if node.is_leaf:
                yield node
            else:
                stack.extend(e.child_id for e in node.entries)

    def _peek_node(self, page_id: int) -> Node:
        """Uncounted read used by introspection only.

        Consults every cache layer (internal, operation, resident LRU)
        before the raw disk page, so introspection never observes a page
        image that in-memory state has already superseded.
        """
        buffer = self.buffer
        cached = buffer._internal_cache.get(page_id)
        if cached is not None:
            return cached
        cached = buffer._op_leaf_cache.get(page_id)
        if cached is not None:
            return cached
        cached = buffer._lru.get(page_id)
        if cached is not None:
            return cached
        # Lazy decode: introspection walks (leaf counts, ring checks) often
        # need only the header; entries thaw on first access.
        return buffer.codec.decode(
            page_id, buffer.disk.peek(page_id), lazy=True
        )

    def iter_leaf_entries(self) -> Iterator[LeafEntry]:
        for node in self.iter_leaf_nodes():
            yield from node.entries

    def num_leaf_nodes(self) -> int:
        return sum(1 for _ in self.iter_leaf_nodes())

    def num_leaf_entries(self) -> int:
        # len(node) reads the header count on lazily-decoded leaves, so
        # this never materialises any entry objects.
        return sum(len(node) for node in self.iter_leaf_nodes())

    def leaf_mbr_sides(self) -> List[Tuple[float, float]]:
        """Width/height of every leaf MBR (input to the Lemma-2 estimator)."""
        return [
            (node.mbr().width, node.mbr().height)
            for node in self.iter_leaf_nodes()
            if node.entries
        ]

    # ------------------------------------------------------------------
    # EXPLAIN/ANALYZE (see repro.obs.explain for the report structures)
    # ------------------------------------------------------------------

    def explain_query(self, window: Rect) -> "ExplainReport":
        """ANALYZE one range query: run the real traversal against the
        real buffer, recording a per-node trace whose I/O reconciles
        exactly with the operation's IOStats delta.

        The traversal charges the same counted leaf reads a live
        ``range_search`` would (that equivalence is the query mirror's
        contract), so the report's ``io_delta`` *is* the cost of asking
        the query.  ``served_by`` reports which path the live query
        would take right now; a valid mirror additionally contributes a
        ``mirror`` summary block.  Mirror streak state is not touched.
        """
        from repro.obs.explain import ExplainReport

        mirror = self._mirror
        mirror_valid = (
            mirror is not None and mirror.version == self.buffer.version
        )
        visits, raw, io_delta = self._explain_range_traversal(window)
        return ExplainReport(
            op="query",
            tree=self.name,
            backend=kernels.BACKEND,
            params={
                "window": (window.xmin, window.ymin, window.xmax, window.ymax)
            },
            served_by="mirror" if mirror_valid else "traversal",
            visits=visits,
            io_delta=io_delta,
            results=len(raw),
            mirror=mirror.summary() if mirror_valid else None,
        )

    def _explain_range_traversal(self, window: Rect):
        """Instrumented twin of the stack-based descent in
        :meth:`range_search`: identical visit set and kernel calls, plus
        per-visit residency and exact per-visit I/O deltas."""
        from repro.obs.explain import NodeVisit

        buffer = self.buffer
        wx1, wy1 = window.xmin, window.ymin
        wx2, wy2 = window.xmax, window.ymax
        visits: List[NodeVisit] = []
        results: List[LeafEntry] = []
        before = self.stats.snapshot()
        with buffer.operation():
            stack = [(self.root_id, self.height - 1)]
            while stack:
                page_id, level = stack.pop()
                residency = buffer.residency(page_id)
                v_before = self.stats.snapshot()
                node = buffer.get_node(page_id)
                v_io = self.stats.snapshot() - v_before
                hits = kernels.intersect_indices(
                    node.coord_block(), wx1, wy1, wx2, wy2
                )
                entries = node.entries
                visits.append(
                    NodeVisit(
                        page_id=page_id,
                        level=level,
                        is_leaf=node.is_leaf,
                        entries_tested=len(entries),
                        entries_matched=len(hits),
                        residency=residency,
                        io=v_io,
                    )
                )
                if not hits:
                    continue
                if node.is_leaf:
                    results.extend(node.take(hits))
                else:
                    stack.extend(
                        (entries[i].child_id, level - 1) for i in hits
                    )
        io_delta = self.stats.snapshot() - before
        return visits, results, io_delta

    def explain_knn(self, x: float, y: float, k: int) -> "ExplainReport":
        """ANALYZE one kNN query (best-first MINDIST search)."""
        from repro.obs.explain import ExplainReport

        visits, results, io_delta = self._explain_knn_traversal(
            x, y, k, None
        )
        return ExplainReport(
            op="knn",
            tree=self.name,
            backend=kernels.BACKEND,
            params={"x": x, "y": y, "k": k},
            visits=visits,
            io_delta=io_delta,
            results=len(results),
        )

    def _explain_knn_traversal(self, x: float, y: float, k: int, accept):
        """Instrumented twin of :meth:`iter_nearest`.

        ``accept(entry)`` decides whether a surfaced entry counts toward
        ``k`` (the RUM override filters through the memo); ``None``
        accepts everything.  ``entries_matched`` of a visit counts the
        heap items the node contributed.
        """
        import heapq
        import math

        from repro.obs.explain import NodeVisit

        buffer = self.buffer
        visits: List[NodeVisit] = []
        results: List[Tuple[LeafEntry, float]] = []
        before = self.stats.snapshot()
        if k > 0:
            counter = 0
            heap: List[Tuple[float, int, bool, object, int]] = [
                (0.0, 0, False, self.root_id, self.height - 1)
            ]
            with buffer.operation():
                while heap and len(results) < k:
                    dist_sq, _tie, is_entry, payload, level = heapq.heappop(
                        heap
                    )
                    if is_entry:
                        leaf, slot = payload
                        entry = leaf.take((slot,))[0]
                        if accept is None or accept(entry):
                            results.append((entry, math.sqrt(dist_sq)))
                        continue
                    residency = buffer.residency(payload)
                    v_before = self.stats.snapshot()
                    node = buffer.get_node(payload)
                    v_io = self.stats.snapshot() - v_before
                    dists = kernels.min_dist_sq(node.coord_block(), x, y)
                    n = len(node.entries)
                    visits.append(
                        NodeVisit(
                            page_id=payload,
                            level=level,
                            is_leaf=node.is_leaf,
                            entries_tested=n,
                            entries_matched=n,
                            residency=residency,
                            io=v_io,
                        )
                    )
                    if node.is_leaf:
                        for i, d in enumerate(dists):
                            counter += 1
                            heapq.heappush(
                                heap, (d, counter, True, (node, i), 0)
                            )
                    else:
                        entries = node.entries
                        for i, d in enumerate(dists):
                            counter += 1
                            heapq.heappush(
                                heap,
                                (
                                    d,
                                    counter,
                                    False,
                                    entries[i].child_id,
                                    level - 1,
                                ),
                            )
        io_delta = self.stats.snapshot() - before
        return visits, results, io_delta

    def explain_update(
        self, oid: int, new_rect: Rect, old_rect: Optional[Rect] = None
    ) -> "ExplainReport":
        """ANALYZE one update — **this mutates the tree** (the update is
        really performed; that is what makes the reported I/O exact).

        Generic version for the top-down/bottom-up baselines: the
        deletion search path is pre-walked read-only with *uncounted*
        peeks (per-visit ``io`` is zero), then the real
        ``update_object`` runs and its whole delta is reported as the
        ``update`` phase — so the report still reconciles exactly.  The
        RUM override replaces this with a fully attributed memo-based
        trace.
        """
        from repro.obs.explain import ExplainReport

        if old_rect is None:
            raise ValueError(
                "old_rect is required to explain a top-down/bottom-up update"
            )
        visits = self._explain_find_path(oid, old_rect)
        height_before = self.height
        before = self.stats.snapshot()
        self.update_object(oid, old_rect, new_rect)
        io_delta = self.stats.snapshot() - before
        return ExplainReport(
            op="update",
            tree=self.name,
            backend=kernels.BACKEND,
            params={
                "oid": oid,
                "old_rect": tuple(old_rect),
                "new_rect": tuple(new_rect),
            },
            visits=visits,
            phases={"update": io_delta},
            io_delta=io_delta,
            results=1,
            extra={
                "height_before": height_before,
                "height_after": self.height,
                "visit_io_attributed": False,
            },
        )

    def _explain_find_path(self, oid: int, rect: Rect):
        """Read-only twin of :meth:`_find_leaf_entry` using uncounted
        peeks: the containment-search path a top-down deletion follows,
        with zero per-visit I/O (the real op charges it)."""
        from repro.obs.explain import NodeVisit
        from repro.storage.iostats import IOSnapshot

        rx1, ry1 = rect.xmin, rect.ymin
        rx2, ry2 = rect.xmax, rect.ymax
        zero = IOSnapshot()
        visits: List[NodeVisit] = []
        stack = [(self.root_id, self.height - 1)]
        while stack:
            page_id, level = stack.pop()
            residency = self.buffer.residency(page_id)
            node = self._peek_node(page_id)
            entries = node.entries
            if node.is_leaf:
                matched = sum(
                    1
                    for e in entries
                    if e.oid == oid and e.rect == rect
                )
                visits.append(
                    NodeVisit(
                        page_id=page_id,
                        level=level,
                        is_leaf=True,
                        entries_tested=len(entries),
                        entries_matched=matched,
                        residency=residency,
                        io=zero,
                    )
                )
                if matched:
                    break
            else:
                hits = kernels.contain_indices(
                    node.coord_block(), rx1, ry1, rx2, ry2
                )
                visits.append(
                    NodeVisit(
                        page_id=page_id,
                        level=level,
                        is_leaf=False,
                        entries_tested=len(entries),
                        entries_matched=len(hits),
                        residency=residency,
                        io=zero,
                    )
                )
                stack.extend((entries[i].child_id, level - 1) for i in hits)
        return visits

    # -- structural invariants (used heavily by the test suite) -----------

    def check_invariants(self) -> None:
        """Validate structure; raises ``InvariantViolation`` (an
        ``AssertionError`` subclass) on any violation.

        Delegates to :func:`repro.lint.invariants.check_tree`, which also
        runs the memo/stamp consistency checks on RUM trees.
        """
        from repro.lint.invariants import check_tree

        check_tree(self)
