"""Disk-resident secondary index (oid -> leaf page) for the FUR-tree.

The bottom-up update approach of Lee et al. [11] locates the leaf node of
the old entry through a hash table on object identifiers.  The paper
emphasises two costs of this structure that the RUM-tree avoids:

* it has **one entry per object**, so it is far larger than the Update
  Memo (Figure 12d compares the sizes);
* it must be **updated whenever an object changes leaf node**, adding disk
  accesses to the update path (Section 4.2.2 charges 1 read per lookup and
  1 write per repointing).

This implementation is a bucketed hash directory with page-granular cost
accounting on the ``index_reads`` / ``index_writes`` channels.  With the
default sizing each bucket fits one page, matching the paper's unit costs;
oversized buckets charge their extra chain pages.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.storage.iostats import IOStats

#: On-disk bytes per (oid, leaf page id) mapping.
INDEX_ENTRY_BYTES = 16


class SecondaryIndex:
    """Hash directory mapping object id to the leaf page holding its entry."""

    def __init__(
        self,
        stats: IOStats,
        page_size: int,
        n_buckets: int = 1024,
    ):
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        self.stats = stats
        self.page_size = page_size
        self.n_buckets = n_buckets
        self.entries_per_page = max(1, page_size // INDEX_ENTRY_BYTES)
        self._buckets: Dict[int, Dict[int, int]] = {}

    # -- cost helpers ----------------------------------------------------------

    def _bucket(self, oid: int) -> Dict[int, int]:
        return self._buckets.setdefault(oid % self.n_buckets, {})

    def _bucket_pages(self, bucket: Dict[int, int]) -> int:
        if not bucket:
            return 1
        return -(-len(bucket) // self.entries_per_page)

    def _charge_read(self, bucket: Dict[int, int]) -> None:
        # Reading a bucket costs one page normally; a bucket that has
        # overflowed its page charges its full chain.
        self.stats.index_reads += self._bucket_pages(bucket)

    def _charge_write(self, bucket: Dict[int, int]) -> None:
        self.stats.index_writes += 1

    # -- operations --------------------------------------------------------------

    def lookup(self, oid: int) -> Optional[int]:
        """Leaf page currently holding ``oid`` (1 index read)."""
        bucket = self._bucket(oid)
        self._charge_read(bucket)
        return bucket.get(oid)

    def assign(self, oid: int, leaf_page: int,
               bucket_in_hand: bool = False) -> None:
        """Point ``oid`` at ``leaf_page`` (1 index read + 1 index write).

        With ``bucket_in_hand=True`` the read is skipped: the caller just
        looked the same oid up, so the bucket page is already in memory
        (this makes the sibling-update case cost the paper's 6 I/Os).
        """
        bucket = self._bucket(oid)
        if not bucket_in_hand:
            self._charge_read(bucket)
        bucket[oid] = leaf_page
        self._charge_write(bucket)

    def remove(self, oid: int) -> None:
        """Drop the mapping for ``oid`` (1 index read + 1 index write)."""
        bucket = self._bucket(oid)
        self._charge_read(bucket)
        bucket.pop(oid, None)
        self._charge_write(bucket)

    def assign_many(self, mappings: Iterable[Tuple[int, int]]) -> None:
        """Repoint many oids at once (leaf split / condense maintenance).

        Mappings are grouped by bucket so each touched bucket page is read
        and written once — the batched maintenance a real implementation
        would perform.
        """
        by_bucket: Dict[int, list] = {}
        for oid, leaf_page in mappings:
            by_bucket.setdefault(oid % self.n_buckets, []).append(
                (oid, leaf_page)
            )
        for bucket_id, pairs in by_bucket.items():
            bucket = self._buckets.setdefault(bucket_id, {})
            self._charge_read(bucket)
            for oid, leaf_page in pairs:
                bucket[oid] = leaf_page
            self._charge_write(bucket)

    # -- introspection -------------------------------------------------------------

    def peek(self, oid: int) -> Optional[int]:
        """Uncounted lookup for tests and metrics."""
        return self._buckets.get(oid % self.n_buckets, {}).get(oid)

    def num_entries(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def size_bytes(self) -> int:
        """Total size of the structure (Figure 12d's comparison metric)."""
        return self.num_entries() * INDEX_ENTRY_BYTES
