"""The R*-tree baseline with top-down updates.

This is the paper's first comparison point (Figure 1a): an update is a
separate top-down *search & delete* of the old entry followed by a
single-path *insert* of the new entry.  The deletion search is the costly
part — it may follow multiple paths because R-tree node MBRs overlap — and
is exactly what the RUM-tree's memo-based approach eliminates.

The class also defines the small *moving-object index* protocol shared by
all three trees so the experiment harness can drive them uniformly:
``insert_object`` / ``update_object`` / ``delete_object`` / ``search``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.storage.buffer import BufferPool

from .base import RTreeBase
from .geometry import Rect


class ObjectNotFoundError(KeyError):
    """Raised when a top-down update cannot locate the old entry."""


class RStarTree(RTreeBase):
    """R*-tree [1] indexing the current positions of moving objects."""

    name = "R*-tree"

    def __init__(self, buffer: BufferPool, **kwargs):
        kwargs.setdefault("maintain_leaf_ring", False)
        super().__init__(buffer, **kwargs)

    # -- moving-object index protocol --------------------------------------

    def insert_object(self, oid: int, rect: Rect) -> None:
        """Index a new object (single-path R* insertion)."""
        self.insert(rect, oid)

    def update_object(self, oid: int, old_rect: Rect, new_rect: Rect) -> None:
        """Top-down update: search & delete the old entry, insert the new.

        ``old_rect`` must be the exact MBR currently stored for ``oid`` —
        the classic approach requires the old value, one of the maintenance
        burdens the RUM-tree removes (Section 3.2.1).

        Deletion and insertion run as two separate disk operations, so the
        cost matches the paper's accounting ``IO_TD = IO_search + 3``
        (Section 4.2.1) even when the object stays in the same leaf.
        """
        obs = self.obs
        if obs is None:
            self._top_down_update(oid, old_rect, new_rect)
            return
        tick = self._obs_utick
        if tick:
            # Unsampled update: exact counter + leaf-I/O histogram only
            # (see RTreeBase._obs_update_lite).
            self._obs_utick = tick - 1
            s = self.stats
            lio0 = s.leaf_reads + s.leaf_writes
            self._top_down_update(oid, old_rect, new_rect)
            self._obs_update_lite(lio0)
            return
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("update", io=self.stats, tree=self.name, oid=oid):
                self._top_down_update(oid, old_rect, new_rect)
        else:
            self._top_down_update(oid, old_rect, new_rect)
        self._obs_update_end(begin)

    def _top_down_update(self, oid: int, old_rect: Rect, new_rect: Rect) -> None:
        if not self.delete(oid, old_rect):
            raise ObjectNotFoundError(oid)
        self.insert(new_rect, oid)

    def delete_object(self, oid: int, old_rect: Rect) -> None:
        """Remove an object entirely (top-down search & delete)."""
        obs = self.obs
        if obs is None:
            if not self.delete(oid, old_rect):
                raise ObjectNotFoundError(oid)
            return
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("delete", io=self.stats, tree=self.name, oid=oid):
                if not self.delete(oid, old_rect):
                    raise ObjectNotFoundError(oid)
        else:
            if not self.delete(oid, old_rect):
                raise ObjectNotFoundError(oid)
        self._obs_op_end(
            begin, "delete", self._obs_c_updates, self._obs_h_update_io, None
        )

    def search(self, window: Rect) -> List[Tuple[int, Rect]]:
        """All objects whose current MBR intersects ``window``."""
        obs = self.obs
        if obs is None:
            return [(e.oid, e.rect) for e in self.range_search(window)]
        tick = self._obs_qtick
        if tick:
            self._obs_qtick = tick - 1
            return [(e.oid, e.rect) for e in self.range_search(window)]
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("query", io=self.stats, tree=self.name):
                results = [(e.oid, e.rect) for e in self.range_search(window)]
        else:
            results = [(e.oid, e.rect) for e in self.range_search(window)]
        self._obs_query_end(begin, window)
        return results

    def nearest_neighbors(
        self, x: float, y: float, k: int
    ) -> List[Tuple[int, Rect]]:
        """The ``k`` objects nearest to ``(x, y)``, nearest first."""
        obs = self.obs
        if obs is None:
            return [(e.oid, e.rect) for e in self.nearest_entries(x, y, k)]
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("knn", io=self.stats, tree=self.name, k=k):
                results = [
                    (e.oid, e.rect) for e in self.nearest_entries(x, y, k)
                ]
        else:
            results = [(e.oid, e.rect) for e in self.nearest_entries(x, y, k)]
        self._obs_op_end(
            begin, "knn", self._obs_c_knn, self._obs_h_query_io, None
        )
        return results

    def lookup(self, oid: int, rect: Rect) -> Optional[Rect]:
        """Return the stored MBR for ``oid`` (testing aid)."""
        with self.buffer.operation():
            found = self._find_leaf_entry(oid, rect)
        return found[0].entries[found[1]].rect if found else None
