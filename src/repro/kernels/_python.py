"""Scalar fallback backend: memoryview/list columns, no dependencies.

This is the reference implementation of the kernel API — the numpy backend
must reproduce its results bit-for-bit (see the package docstring).  Every
float expression here is written in the exact shape the numpy backend
vectorises: the same min/max selections, the same multiplication and
subtraction order, and strictly sequential accumulation.  When editing one
backend, edit the other in lockstep and run ``tests/test_kernels.py``.

A column block is ``(n, xs1, ys1, xs2, ys2)`` where the four coordinate
columns are plain Python sequences of floats.  Blocks decoded straight from
a page image are produced with one contiguous ``memoryview.cast('d')`` plus
four strided ``tolist()`` slices — no per-entry ``struct`` calls, which is
what keeps the fallback within a few percent of the pre-kernel scalar code
even without numpy.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

BACKEND = "python"

#: (n, xs1, ys1, xs2, ys2) — four parallel coordinate columns.
Block = Tuple[int, Sequence[float], Sequence[float], Sequence[float],
              Sequence[float]]

_EMPTY: Block = (0, (), (), (), ())


# -- construction -----------------------------------------------------------


def block_from_entries(entries: Sequence[Any]) -> Block:
    """Column block of the MBRs of ``entries`` (anything with ``.rect``).

    Both backends build entry-born blocks as plain list columns: they come
    from freshly mutated nodes (ChooseSubtree, splits), where list columns
    are cheaper to build than arrays and the consuming scans are small.
    """
    rects = [e.rect for e in entries]
    return (
        len(rects),
        [r.xmin for r in rects],
        [r.ymin for r in rects],
        [r.xmax for r in rects],
        [r.ymax for r in rects],
    )


def block_from_buffer(
    data: bytes, offset: int, count: int, stride: int
) -> Block:
    """Column block straight off a page image's entry region.

    ``stride`` is the on-disk entry size in bytes; the four float64 MBR
    coordinates must sit at the start of each entry (they do, in every
    layout of :mod:`repro.storage.codec`).  The id/stamp words between
    coordinates are skipped by the strided slices and never decoded.
    """
    if not count:
        return _EMPTY
    step = stride // 8
    view = memoryview(data)[offset:offset + count * stride].cast("d")
    return (
        count,
        view[0::step].tolist(),
        view[1::step].tolist(),
        view[2::step].tolist(),
        view[3::step].tolist(),
    )


def block_get(block: Block, i: int) -> Tuple[float, float, float, float]:
    """The ``i``-th rectangle of the block as a coordinate tuple."""
    return (block[1][i], block[2][i], block[3][i], block[4][i])


def block_rows(block: Block) -> List[Tuple[float, float, float, float]]:
    """All rectangles as a list of ``(xmin, ymin, xmax, ymax)`` rows."""
    return list(zip(block[1], block[2], block[3], block[4]))


# -- bulk measures and predicate masks --------------------------------------


def areas(block: Block) -> List[float]:
    """Per-rectangle areas."""
    return [
        (x2 - x1) * (y2 - y1)
        for x1, y1, x2, y2 in zip(block[1], block[2], block[3], block[4])
    ]


def intersect_indices(
    block: Block, wx1: float, wy1: float, wx2: float, wy2: float
) -> List[int]:
    """Indices of rectangles intersecting the closed query window."""
    out: List[int] = []
    append = out.append
    i = 0
    for x1, y1, x2, y2 in zip(block[1], block[2], block[3], block[4]):
        if x1 <= wx2 and wx1 <= x2 and y1 <= wy2 and wy1 <= y2:
            append(i)
        i += 1
    return out


def contain_indices(
    block: Block, qx1: float, qy1: float, qx2: float, qy2: float
) -> List[int]:
    """Indices of rectangles that fully contain the query rectangle."""
    out: List[int] = []
    append = out.append
    i = 0
    for x1, y1, x2, y2 in zip(block[1], block[2], block[3], block[4]):
        if x1 <= qx1 and y1 <= qy1 and qx2 <= x2 and qy2 <= y2:
            append(i)
        i += 1
    return out


def min_dist_sq(block: Block, x: float, y: float) -> List[float]:
    """Squared MINDIST from the point to every rectangle.

    Squared distances order identically to Euclidean ones and avoid the
    per-entry ``hypot`` call, whose internal rounding the numpy backend
    could not reproduce exactly.
    """
    out: List[float] = []
    append = out.append
    for x1, y1, x2, y2 in zip(block[1], block[2], block[3], block[4]):
        dx = x1 - x
        t = x - x2
        if t > dx:
            dx = t
        if dx < 0.0:
            dx = 0.0
        dy = y1 - y
        t = y - y2
        if t > dy:
            dy = t
        if dy < 0.0:
            dy = 0.0
        append(dx * dx + dy * dy)
    return out


def enlargements(
    block: Block, rx1: float, ry1: float, rx2: float, ry2: float
) -> Tuple[List[float], List[float]]:
    """Per-rectangle (area enlargement to cover the rect, current area)."""
    enl: List[float] = []
    area_out: List[float] = []
    ea = enl.append
    aa = area_out.append
    for ex1, ey1, ex2, ey2 in zip(block[1], block[2], block[3], block[4]):
        ux1 = ex1 if ex1 < rx1 else rx1
        uy1 = ey1 if ey1 < ry1 else ry1
        ux2 = ex2 if ex2 > rx2 else rx2
        uy2 = ey2 if ey2 > ry2 else ry2
        area = (ex2 - ex1) * (ey2 - ey1)
        ea((ux2 - ux1) * (uy2 - uy1) - area)
        aa(area)
    return enl, area_out


def overlap_delta(
    block: Block, i: int, nx1: float, ny1: float, nx2: float, ny2: float
) -> float:
    """R* overlap enlargement of growing rectangle ``i`` to ``n*``.

    Sums, over all other rectangles, the overlap with the enlarged
    rectangle minus the overlap with the original — the quantity the R*
    ChooseSubtree minimises at the leaf-parent level.  The accumulation is
    strictly interleaved (+new, −old per sibling, in index order); the
    numpy backend reproduces the same addition sequence.
    """
    ex1 = block[1][i]
    ey1 = block[2][i]
    ex2 = block[3][i]
    ey2 = block[4][i]
    delta = 0.0
    j = 0
    for ox1, oy1, ox2, oy2 in zip(block[1], block[2], block[3], block[4]):
        if j == i:
            j += 1
            continue
        j += 1
        w = (nx2 if nx2 < ox2 else ox2) - (nx1 if nx1 > ox1 else ox1)
        if w > 0.0:
            h = (ny2 if ny2 < oy2 else oy2) - (ny1 if ny1 > oy1 else oy1)
            if h > 0.0:
                delta += w * h
        w = (ex2 if ex2 < ox2 else ox2) - (ex1 if ex1 > ox1 else ox1)
        if w > 0.0:
            h = (ey2 if ey2 < oy2 else oy2) - (ey1 if ey1 > oy1 else oy1)
            if h > 0.0:
                delta -= w * h
    return delta


# -- split scans ------------------------------------------------------------


def argsort(block: Block, dim: int) -> List[int]:
    """Stable ascending index sort by one coordinate column (0..3)."""
    return sorted(range(block[0]), key=block[dim + 1].__getitem__)


def split_tables(
    block: Block, order: Sequence[int], min_entries: int
) -> Tuple[float, Any, Any]:
    """R* margin sum plus prefix/suffix running bounds along ``order``.

    Returns ``(margin_sum, prefix, suffix)``; the bounds tables are opaque
    backend values to be passed to :func:`distribution_scan`.
    """
    n = block[0]
    xs1, ys1, xs2, ys2 = block[1], block[2], block[3], block[4]
    px1 = [0.0] * n
    py1 = [0.0] * n
    px2 = [0.0] * n
    py2 = [0.0] * n
    i = order[0]
    x1, y1, x2, y2 = xs1[i], ys1[i], xs2[i], ys2[i]
    px1[0], py1[0], px2[0], py2[0] = x1, y1, x2, y2
    for k in range(1, n):
        i = order[k]
        v = xs1[i]
        if v < x1:
            x1 = v
        v = ys1[i]
        if v < y1:
            y1 = v
        v = xs2[i]
        if v > x2:
            x2 = v
        v = ys2[i]
        if v > y2:
            y2 = v
        px1[k], py1[k], px2[k], py2[k] = x1, y1, x2, y2
    qx1 = [0.0] * n
    qy1 = [0.0] * n
    qx2 = [0.0] * n
    qy2 = [0.0] * n
    i = order[n - 1]
    x1, y1, x2, y2 = xs1[i], ys1[i], xs2[i], ys2[i]
    qx1[n - 1], qy1[n - 1], qx2[n - 1], qy2[n - 1] = x1, y1, x2, y2
    for k in range(n - 2, -1, -1):
        i = order[k]
        v = xs1[i]
        if v < x1:
            x1 = v
        v = ys1[i]
        if v < y1:
            y1 = v
        v = xs2[i]
        if v > x2:
            x2 = v
        v = ys2[i]
        if v > y2:
            y2 = v
        qx1[k], qy1[k], qx2[k], qy2[k] = x1, y1, x2, y2
    margin = 0.0
    for k in range(min_entries, n - min_entries + 1):
        margin += (
            (px2[k - 1] - px1[k - 1])
            + (py2[k - 1] - py1[k - 1])
            + (qx2[k] - qx1[k])
            + (qy2[k] - qy1[k])
        )
    return margin, (px1, py1, px2, py2), (qx1, qy1, qx2, qy2)


def distribution_scan(
    prefix: Any, suffix: Any, min_entries: int
) -> Tuple[List[float], List[float]]:
    """Overlap and combined area of every legal split distribution.

    Entry ``j`` describes the distribution putting the first
    ``min_entries + j`` sorted entries into the left group.
    """
    px1, py1, px2, py2 = prefix
    qx1, qy1, qx2, qy2 = suffix
    n = len(px1)
    overlaps: List[float] = []
    areas_out: List[float] = []
    oa = overlaps.append
    aa = areas_out.append
    for k in range(min_entries, n - min_entries + 1):
        ax1, ay1, ax2, ay2 = px1[k - 1], py1[k - 1], px2[k - 1], py2[k - 1]
        bx1, by1, bx2, by2 = qx1[k], qy1[k], qx2[k], qy2[k]
        overlap = 0.0
        w = (ax2 if ax2 < bx2 else bx2) - (ax1 if ax1 > bx1 else bx1)
        if w > 0.0:
            h = (ay2 if ay2 < by2 else by2) - (ay1 if ay1 > by1 else by1)
            if h > 0.0:
                overlap = w * h
        oa(overlap)
        aa((ax2 - ax1) * (ay2 - ay1) + (bx2 - bx1) * (by2 - by1))
    return overlaps, areas_out


def quadratic_seeds(block: Block) -> Tuple[int, int]:
    """Guttman seed pair: the two rectangles wasting the most dead space.

    First-occurrence semantics in row-major ``(i, j)`` scan order with the
    original ``waste > -1.0`` threshold (an all-ties degenerate input keeps
    the historical ``(0, 0)`` answer); the numpy backend's masked argmax
    reproduces both.
    """
    n = block[0]
    xs1, ys1, xs2, ys2 = block[1], block[2], block[3], block[4]
    area = areas(block)
    worst = -1.0
    seed_a = seed_b = 0
    for i in range(n):
        ax1, ay1, ax2, ay2 = xs1[i], ys1[i], xs2[i], ys2[i]
        area_i = area[i]
        for j in range(i + 1, n):
            bx1, by1, bx2, by2 = xs1[j], ys1[j], xs2[j], ys2[j]
            waste = (
                ((ax2 if ax2 > bx2 else bx2) - (ax1 if ax1 < bx1 else bx1))
                * ((ay2 if ay2 > by2 else by2) - (ay1 if ay1 < by1 else by1))
                - area_i
                - area[j]
            )
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j
    return seed_a, seed_b


_MORTON_MAX = 0xFFFF  # (1 << 16) - 1, matching repro.rtree.zorder


def _spread1by1(v: int) -> int:
    v &= 0xFFFF
    v = (v | (v << 8)) & 0x00FF00FF
    v = (v | (v << 4)) & 0x0F0F0F0F
    v = (v | (v << 2)) & 0x33333333
    v = (v | (v << 1)) & 0x55555555
    return v


def morton_keys(
    cxs: Sequence[float], cys: Sequence[float]
) -> List[int]:
    """Bulk 32-bit Morton codes of unit-square points (clamped).

    Per element: quantise each coordinate to 16 bits (truncating, like
    ``int()``), spread the bits, interleave with y in the odd positions.
    The numpy backend reproduces this bit for bit.
    """
    keys: List[int] = []
    append = keys.append
    for cx, cy in zip(cxs, cys):
        if cx != cx:  # NaN routes to the origin cell
            cx = 0.0
        if cy != cy:
            cy = 0.0
        qx = int(min(max(cx, 0.0), 1.0) * _MORTON_MAX)
        qy = int(min(max(cy, 0.0), 1.0) * _MORTON_MAX)
        append(_spread1by1(qx) | (_spread1by1(qy) << 1))
    return keys
