"""Columnar batch kernels for MBR predicates, split scans, and page decode.

The per-entry interpreter overhead of ``Rect`` method calls is the cost
ceiling of the simulator's hot paths (one Python call per entry per node
visited).  This package replaces those inner loops with *batch* kernels that
operate on a node's coordinates as four parallel columns — a **coordinate
column block** — so one call tests, measures, or scans a whole node.

Two interchangeable backends implement the same module-level API:

* :mod:`repro.kernels._numpy` — vectorised over ``numpy`` arrays; column
  blocks are zero-copy strided views into the raw page bytes wherever the
  coordinates come straight off a page image;
* :mod:`repro.kernels._python` — dependency-free scalar fallback over
  ``memoryview``/list columns, used automatically when numpy is not
  installed.

The backend is chosen **once, at import time**, from the ``REPRO_KERNELS``
environment variable:

``auto`` (or unset)
    numpy when importable, otherwise the scalar fallback.
``numpy``
    require numpy (``ImportError`` if missing).
``python``
    force the scalar fallback even when numpy is installed (the CI A/B leg
    uses this to prove the fallback is load-bearing).

Bit-identical contract
----------------------

Both backends are required to return **bit-identical** results for every
kernel: identical indices, and floats produced by the *same IEEE-754
expression tree evaluated in the same order* (sequential sums, stable
sorts, first-occurrence argmax).  This is not best-effort — split decisions,
ChooseSubtree decisions, and kNN orderings feed back into tree *shape*, so
any ulp of divergence would make experiment results depend on which backend
happened to be installed.  ``tests/test_kernels.py`` enforces the contract
property-wise across random and degenerate geometry.

A column block is an opaque value: construct it with
:func:`block_from_entries` / :func:`block_from_buffer` and pass it back to
the kernels.  Blocks are immutable snapshots — see ``docs/KERNELS.md`` for
the invalidation rules (`Node.coord_block` caches one per node; any entry
mutation must go through ``BufferPool.mark_dirty``, which drops it).
"""

from __future__ import annotations

import os

_requested = os.environ.get("REPRO_KERNELS", "auto").strip().lower() or "auto"

if _requested == "auto":
    try:
        from . import _numpy as _impl
    except ImportError:  # numpy not installed: scalar fallback
        from . import _python as _impl  # type: ignore[no-redef]
elif _requested == "numpy":
    from . import _numpy as _impl  # type: ignore[no-redef]
elif _requested == "python":
    from . import _python as _impl  # type: ignore[no-redef]
else:
    raise RuntimeError(
        f"REPRO_KERNELS={_requested!r}: expected 'auto', 'numpy' or 'python'"
    )

#: Name of the active backend: ``"numpy"`` or ``"python"``.
BACKEND: str = _impl.BACKEND

# Column-block construction -------------------------------------------------
block_from_entries = _impl.block_from_entries
block_from_buffer = _impl.block_from_buffer
block_get = _impl.block_get
block_rows = _impl.block_rows

# Bulk measures and predicate masks ----------------------------------------
areas = _impl.areas
intersect_indices = _impl.intersect_indices
contain_indices = _impl.contain_indices
min_dist_sq = _impl.min_dist_sq
enlargements = _impl.enlargements
overlap_delta = _impl.overlap_delta

# Bulk encoders -------------------------------------------------------------
morton_keys = _impl.morton_keys

# Split scans ---------------------------------------------------------------
argsort = _impl.argsort
split_tables = _impl.split_tables
distribution_scan = _impl.distribution_scan
quadratic_seeds = _impl.quadratic_seeds

__all__ = [
    "BACKEND",
    "block_from_entries",
    "block_from_buffer",
    "block_get",
    "block_rows",
    "areas",
    "intersect_indices",
    "contain_indices",
    "min_dist_sq",
    "enlargements",
    "overlap_delta",
    "morton_keys",
    "argsort",
    "split_tables",
    "distribution_scan",
    "quadratic_seeds",
]
