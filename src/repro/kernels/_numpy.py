"""Vectorised kernel backend over numpy arrays.

Mirror of :mod:`repro.kernels._python` — see that module and the package
docstring for the API and the bit-identical contract.  Every vectorised
expression here is arranged to evaluate the *same IEEE-754 operation
sequence* as the scalar reference:

* elementwise min/max/multiply/subtract chains are associated exactly as
  the scalar code associates them (no reassociation, no fused reductions);
* sums that the scalar backend accumulates sequentially use
  ``np.add.accumulate`` / ``sum(arr.tolist(), 0.0)`` — never ``np.sum``,
  whose pairwise reduction rounds differently;
* sorts use ``kind="stable"`` so ties keep ascending-index order like
  ``sorted(range(n), key=...)``;
* argmax selections rely on numpy's first-occurrence guarantee, matching
  the scalar strict-``>`` scan.

**Adaptive representation.**  Blocks carry their provenance in their
column type, and every kernel dispatches on it:

* *buffer-born* blocks (:func:`block_from_buffer`) hold zero-copy
  ``np.frombuffer`` column views over the page image — the id/stamp words
  of the 8-byte-aligned entry layouts are skipped by striding.  These are
  decoded whole pages (tens to hundreds of rows), where vectorisation
  pays for its dispatch overhead.
* *entry-born* blocks (:func:`block_from_entries`) hold plain list
  columns, shared with the scalar backend.  They come from freshly
  mutated nodes on the insert/split paths, where building an ndarray
  would cost more than the scan it feeds; kernels run the scalar
  reference code on them unless the input is large enough that
  converting and vectorising wins (``_VECTORIZE_MIN`` rows for the
  linear split scans, ``_SEEDS_VECTORIZE_MIN`` for the quadratic seed
  search, whose O(n^2) waste matrix vectorises profitably much earlier).

Both representations produce bit-identical results — the cutoffs are pure
performance knobs, and ``tests/test_kernels.py`` pins the equivalence.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from . import _python as _py

BACKEND = "numpy"

#: (n, xs1, ys1, xs2, ys2) — four parallel columns: float64 array views
#: (buffer-born) or plain lists (entry-born, shared with ``_python``).
Block = Tuple[int, Any, Any, Any, Any]

#: Entry-born blocks at least this long vectorise the linear split scans
#: (argsort / split_tables): four ``np.asarray`` conversions cost ~n/16
#: comparisons' worth of work, so small scans stay scalar.
_VECTORIZE_MIN = 64

#: Entry-born blocks at least this long vectorise the O(n^2) quadratic
#: seed search; the crossover is far lower than for the linear scans.
_SEEDS_VECTORIZE_MIN = 16

_EMPTY_COL = np.empty(0, dtype=np.float64)
_EMPTY: Block = (0, _EMPTY_COL, _EMPTY_COL, _EMPTY_COL, _EMPTY_COL)


def _is_scalar(block: Block) -> bool:
    """True for entry-born (list-column) blocks."""
    return type(block[1]) is list


def _lift(block: Block) -> Block:
    """Array-column copy of an entry-born block (for vectorised scans)."""
    return (
        block[0],
        np.asarray(block[1], dtype=np.float64),
        np.asarray(block[2], dtype=np.float64),
        np.asarray(block[3], dtype=np.float64),
        np.asarray(block[4], dtype=np.float64),
    )


# -- construction -----------------------------------------------------------

#: Entry-born blocks are built by the scalar reference (list columns).
block_from_entries = _py.block_from_entries


def block_from_buffer(
    data: bytes, offset: int, count: int, stride: int
) -> Block:
    """Zero-copy column block over a page image's entry region."""
    if not count:
        return _EMPTY
    step = stride // 8
    m = np.frombuffer(
        data, dtype=np.float64, count=count * step, offset=offset
    ).reshape(count, step)
    return (count, m[:, 0], m[:, 1], m[:, 2], m[:, 3])


def block_get(block: Block, i: int) -> Tuple[float, float, float, float]:
    """The ``i``-th rectangle of the block as a plain-float tuple."""
    return (
        float(block[1][i]),
        float(block[2][i]),
        float(block[3][i]),
        float(block[4][i]),
    )


def block_rows(block: Block) -> List[Any]:
    """All rectangles as ``[xmin, ymin, xmax, ymax]`` rows."""
    if _is_scalar(block):
        return _py.block_rows(block)
    if not block[0]:
        return []
    return np.column_stack(block[1:5]).tolist()


# -- bulk measures and predicate masks --------------------------------------


def areas(block: Block) -> List[float]:
    """Per-rectangle areas."""
    if _is_scalar(block):
        return _py.areas(block)
    _n, x1, y1, x2, y2 = block
    return ((x2 - x1) * (y2 - y1)).tolist()


def intersect_indices(
    block: Block, wx1: float, wy1: float, wx2: float, wy2: float
) -> List[int]:
    """Indices of rectangles intersecting the closed query window."""
    if _is_scalar(block):
        return _py.intersect_indices(block, wx1, wy1, wx2, wy2)
    _n, x1, y1, x2, y2 = block
    mask = x1 <= wx2
    mask &= wx1 <= x2
    mask &= y1 <= wy2
    mask &= wy1 <= y2
    return np.flatnonzero(mask).tolist()


def contain_indices(
    block: Block, qx1: float, qy1: float, qx2: float, qy2: float
) -> List[int]:
    """Indices of rectangles that fully contain the query rectangle."""
    if _is_scalar(block):
        return _py.contain_indices(block, qx1, qy1, qx2, qy2)
    _n, x1, y1, x2, y2 = block
    mask = x1 <= qx1
    mask &= y1 <= qy1
    mask &= qx2 <= x2
    mask &= qy2 <= y2
    return np.flatnonzero(mask).tolist()


def min_dist_sq(block: Block, x: float, y: float) -> List[float]:
    """Squared MINDIST from the point to every rectangle."""
    if _is_scalar(block):
        return _py.min_dist_sq(block, x, y)
    _n, x1, y1, x2, y2 = block
    dx = np.maximum(x1 - x, x - x2)
    np.maximum(dx, 0.0, out=dx)
    dy = np.maximum(y1 - y, y - y2)
    np.maximum(dy, 0.0, out=dy)
    dx *= dx
    dy *= dy
    dx += dy
    return dx.tolist()


def enlargements(
    block: Block, rx1: float, ry1: float, rx2: float, ry2: float
) -> Tuple[List[float], List[float]]:
    """Per-rectangle (area enlargement to cover the rect, current area)."""
    if _is_scalar(block):
        return _py.enlargements(block, rx1, ry1, rx2, ry2)
    _n, x1, y1, x2, y2 = block
    ux1 = np.minimum(x1, rx1)
    uy1 = np.minimum(y1, ry1)
    ux2 = np.maximum(x2, rx2)
    uy2 = np.maximum(y2, ry2)
    area = (x2 - x1) * (y2 - y1)
    enl = (ux2 - ux1) * (uy2 - uy1) - area
    return enl.tolist(), area.tolist()


def overlap_delta(
    block: Block, i: int, nx1: float, ny1: float, nx2: float, ny2: float
) -> float:
    """R* overlap enlargement of growing rectangle ``i`` to ``n*``.

    The scalar reference interleaves ``+new_overlap[j]``,
    ``-old_overlap[j]`` per sibling; an interleaved ``np.add.accumulate``
    replays the identical addition sequence (subtraction is addition of
    the exact negation).
    """
    if _is_scalar(block):
        return _py.overlap_delta(block, i, nx1, ny1, nx2, ny2)
    n, x1, y1, x2, y2 = block
    ex1, ey1, ex2, ey2 = block_get(block, i)
    nw = np.minimum(nx2, x2) - np.maximum(nx1, x1)
    nh = np.minimum(ny2, y2) - np.maximum(ny1, y1)
    new_ov = np.where((nw > 0.0) & (nh > 0.0), nw * nh, 0.0)
    ow = np.minimum(ex2, x2) - np.maximum(ex1, x1)
    oh = np.minimum(ey2, y2) - np.maximum(ey1, y1)
    old_ov = np.where((ow > 0.0) & (oh > 0.0), ow * oh, 0.0)
    new_ov[i] = 0.0
    old_ov[i] = 0.0
    terms = np.empty(2 * n, dtype=np.float64)
    terms[0::2] = new_ov
    terms[1::2] = old_ov
    t = terms[1::2]
    np.negative(t, out=t)
    return float(np.add.accumulate(terms)[-1])


# -- split scans ------------------------------------------------------------


def argsort(block: Block, dim: int) -> List[int]:
    """Stable ascending index sort by one coordinate column (0..3)."""
    if _is_scalar(block) and block[0] < _VECTORIZE_MIN:
        return _py.argsort(block, dim)
    return np.argsort(block[dim + 1], kind="stable").tolist()


def split_tables(
    block: Block, order: Sequence[int], min_entries: int
) -> Tuple[float, Any, Any]:
    """R* margin sum plus prefix/suffix running bounds along ``order``."""
    if _is_scalar(block):
        if block[0] < _VECTORIZE_MIN:
            return _py.split_tables(block, order, min_entries)
        block = _lift(block)
    n = block[0]
    idx = np.asarray(order, dtype=np.intp)
    sx1 = block[1][idx]
    sy1 = block[2][idx]
    sx2 = block[3][idx]
    sy2 = block[4][idx]
    px1 = np.minimum.accumulate(sx1)
    py1 = np.minimum.accumulate(sy1)
    px2 = np.maximum.accumulate(sx2)
    py2 = np.maximum.accumulate(sy2)
    qx1 = np.minimum.accumulate(sx1[::-1])[::-1]
    qy1 = np.minimum.accumulate(sy1[::-1])[::-1]
    qx2 = np.maximum.accumulate(sx2[::-1])[::-1]
    qy2 = np.maximum.accumulate(sy2[::-1])[::-1]
    lo = min_entries
    hi = n - min_entries + 1
    a = slice(lo - 1, hi - 1)
    b = slice(lo, hi)
    t = px2[a] - px1[a]
    t = t + (py2[a] - py1[a])
    t = t + (qx2[b] - qx1[b])
    t = t + (qy2[b] - qy1[b])
    margin = sum(t.tolist(), 0.0)
    return margin, (px1, py1, px2, py2), (qx1, qy1, qx2, qy2)


def distribution_scan(
    prefix: Any, suffix: Any, min_entries: int
) -> Tuple[List[float], List[float]]:
    """Overlap and combined area of every legal split distribution."""
    if type(prefix[0]) is list:
        return _py.distribution_scan(prefix, suffix, min_entries)
    px1, py1, px2, py2 = prefix
    qx1, qy1, qx2, qy2 = suffix
    n = len(px1)
    a = slice(min_entries - 1, n - min_entries)
    b = slice(min_entries, n - min_entries + 1)
    ax1, ay1, ax2, ay2 = px1[a], py1[a], px2[a], py2[a]
    bx1, by1, bx2, by2 = qx1[b], qy1[b], qx2[b], qy2[b]
    w = np.minimum(ax2, bx2) - np.maximum(ax1, bx1)
    h = np.minimum(ay2, by2) - np.maximum(ay1, by1)
    overlap = np.where((w > 0.0) & (h > 0.0), w * h, 0.0)
    area = (ax2 - ax1) * (ay2 - ay1) + (bx2 - bx1) * (by2 - by1)
    return overlap.tolist(), area.tolist()


def quadratic_seeds(block: Block) -> Tuple[int, int]:
    """Guttman seed pair via a masked first-occurrence argmax.

    Row-major argmax over the strict upper triangle reproduces the scalar
    ``(i, j)`` scan order and its strict-``>`` first-max retention; the
    ``> -1.0`` threshold keeps the historical ``(0, 0)`` answer on the
    all-ties degenerate input.
    """
    if _is_scalar(block):
        if block[0] < _SEEDS_VECTORIZE_MIN:
            return _py.quadratic_seeds(block)
        block = _lift(block)
    n, x1, y1, x2, y2 = block
    if n < 2:
        return 0, 0
    area = (x2 - x1) * (y2 - y1)
    waste = (
        (np.maximum.outer(x2, x2) - np.minimum.outer(x1, x1))
        * (np.maximum.outer(y2, y2) - np.minimum.outer(y1, y1))
        - area[:, None]
        - area[None, :]
    )
    waste[np.tril_indices(n)] = -np.inf
    flat = int(np.argmax(waste))
    if waste.flat[flat] > -1.0:
        return flat // n, flat % n
    return 0, 0


def morton_keys(
    cxs: Sequence[float], cys: Sequence[float]
) -> List[int]:
    """Bulk Morton codes: vectorised quantise + bit-spread + interleave.

    ``np.uint32`` truncation after the clamp matches ``int()`` on the
    scalar path (both round toward zero on non-negative input), and the
    mask cascade is the same expression tree, so keys are bit-identical
    to :func:`repro.kernels._python.morton_keys`.
    """
    if len(cxs) < 32:  # spreading 2x4 masked ops doesn't pay under ~32
        return _py.morton_keys(cxs, cys)
    # nan_to_num first: np.clip propagates NaN, whose uint32 cast is
    # undefined; the scalar path sends NaN to the origin cell.
    qx = (np.clip(np.nan_to_num(np.asarray(cxs, dtype=np.float64)),
                  0.0, 1.0) * 0xFFFF).astype(np.uint32)
    qy = (np.clip(np.nan_to_num(np.asarray(cys, dtype=np.float64)),
                  0.0, 1.0) * 0xFFFF).astype(np.uint32)

    def spread(v: Any) -> Any:
        v = (v | (v << np.uint32(8))) & np.uint32(0x00FF00FF)
        v = (v | (v << np.uint32(4))) & np.uint32(0x0F0F0F0F)
        v = (v | (v << np.uint32(2))) & np.uint32(0x33333333)
        v = (v | (v << np.uint32(1))) & np.uint32(0x55555555)
        return v

    return [int(k) for k in spread(qx) | (spread(qy) << np.uint32(1))]
