"""The lint engine: file collection, AST parsing, rule dispatch.

The engine is deliberately dependency-free: files are parsed with
:mod:`ast` and every rule receives a :class:`FileContext` carrying the
parsed tree, the raw source lines, and the path split into segments (the
rules scope themselves by segment, e.g. *applies under* ``experiments/``
or *exempt under* ``crashsim/``, so the same rules work on the real
source tree and on test fixtures arranged in the same shape).

Rules come in two flavours:

* **per-file** rules implement ``check(ctx)`` and yield
  ``(line, col, message)`` tuples for one file at a time;
* **project** rules additionally implement ``check_project(contexts)``
  and see every scanned file at once (the codec/layout cross-check needs
  the node-constant declarations *and* the struct format strings, which
  live in different modules).
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from .diagnostics import Diagnostic, SuppressionIndex, sort_key

#: Reserved id for files the engine itself cannot parse; it is not a
#: registered rule and cannot be suppressed.
SYNTAX_ERROR_ID = "REP000"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    path: pathlib.Path
    display: str
    parts: Tuple[str, ...]
    source: str
    lines: List[str]
    tree: ast.Module
    suppressions: SuppressionIndex

    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else ""

    def in_segment(self, *segments: str) -> bool:
        """Whether any of ``segments`` appears as a path component."""
        return any(segment in self.parts for segment in segments)


class LintRule:
    """Base class for rules; subclasses register via :func:`register`."""

    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        """Yield ``(line, col, message)`` findings for one file."""
        return iter(())

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Tuple[FileContext, int, int, str]]:
        """Cross-file findings: yield ``(ctx, line, col, message)``."""
        return iter(())


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[LintRule]]:
    """The registered rules, id -> class (import side effect: ensure the
    built-in rule modules are loaded)."""
    from . import concurrency as _concurrency  # noqa: F401  (registers)
    from . import rules as _rules  # noqa: F401  (registers on import)

    return dict(sorted(_REGISTRY.items()))


def collect_files(paths: Iterable[pathlib.Path]) -> List[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[pathlib.Path] = []
    seen: Set[pathlib.Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[pathlib.Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            key = candidate.resolve()
            if key in seen:
                continue
            seen.add(key)
            out.append(candidate)
    return out


def load_context(path: pathlib.Path) -> Optional[FileContext]:
    """Parse one file into a :class:`FileContext`.

    Returns ``None`` when the file cannot be parsed — the caller emits a
    :data:`SYNTAX_ERROR_ID` diagnostic instead.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    return FileContext(
        path=path,
        display=str(path),
        parts=path.parts,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=SuppressionIndex(lines),
    )


def run_lint(
    paths: Sequence[pathlib.Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint ``paths`` and return the surviving diagnostics, sorted.

    ``select`` restricts to the named rule ids; ``ignore`` drops the
    named ids.  Suppression comments are honoured per rule and line.
    Unknown ids in either list raise ``ValueError`` so a typo in a CI
    invocation cannot silently disable the gate.
    """
    registry = all_rules()
    for name in list(select or []) + list(ignore or []):
        if name not in registry:
            raise ValueError(f"unknown rule id {name!r}")
    active = {
        rule_id: cls()
        for rule_id, cls in registry.items()
        if (select is None or rule_id in select)
        and (ignore is None or rule_id not in ignore)
    }

    contexts: List[FileContext] = []
    diagnostics: List[Diagnostic] = []
    for path in collect_files(paths):
        try:
            ctx = load_context(path)
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=SYNTAX_ERROR_ID,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        if ctx is not None:
            contexts.append(ctx)

    for ctx in contexts:
        found: List[Diagnostic] = []
        for rule in active.values():
            for line, col, message in rule.check(ctx):
                found.append(
                    Diagnostic(ctx.display, line, col, rule.rule_id, message)
                )
        diagnostics.extend(ctx.suppressions.filter(found))

    for rule in active.values():
        project_found: Dict[int, List[Diagnostic]] = {}
        for ctx, line, col, message in rule.check_project(contexts):
            project_found.setdefault(id(ctx), []).append(
                Diagnostic(ctx.display, line, col, rule.rule_id, message)
            )
        for ctx in contexts:
            batch = project_found.get(id(ctx))
            if batch:
                diagnostics.extend(ctx.suppressions.filter(batch))

    diagnostics.sort(key=sort_key)
    return diagnostics
