"""Static analysis and runtime invariant validation for the repro tree.

Two halves:

* the **linter** — a dependency-free AST rule engine
  (``python -m repro.lint src/``) enforcing the project conventions
  introduced by earlier PRs; see :mod:`repro.lint.rules` and
  ``docs/LINT.md``;
* the **invariant validator** — :func:`check_tree`, a runtime oracle for
  the trees' structural invariants, used by ``check_invariants()``, the
  test suite, and the crash-simulation harness.
"""

from .diagnostics import Diagnostic, SuppressionIndex
from .engine import (
    SYNTAX_ERROR_ID,
    FileContext,
    LintRule,
    all_rules,
    collect_files,
    register,
    run_lint,
)
from .invariants import InvariantViolation, check_tree

__all__ = [
    "Diagnostic",
    "SuppressionIndex",
    "SYNTAX_ERROR_ID",
    "FileContext",
    "LintRule",
    "all_rules",
    "collect_files",
    "register",
    "run_lint",
    "InvariantViolation",
    "check_tree",
]
