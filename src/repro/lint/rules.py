"""The project-specific lint rules (REP001–REP009).

Each rule enforces one convention that an earlier PR introduced and that
nothing else checks mechanically.  Scoping is by path *segment* (e.g.
"under ``experiments/``", "exempt under ``crashsim/``"), so the rules
apply identically to the real tree and to test fixtures arranged in the
same directory shape.  See ``docs/LINT.md`` for the catalogue with
examples and suppression syntax.
"""

from __future__ import annotations

import ast
import struct
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import FileContext, LintRule, register

Finding = Tuple[int, int, str]


def _walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class BroadExceptRule(LintRule):
    """``except:`` / ``except BaseException`` can swallow SimulatedCrash.

    :class:`~repro.storage.faults.SimulatedCrash` is a ``BaseException``
    precisely so that library code cannot swallow it by accident — but a
    bare ``except:`` or an ``except BaseException:`` still can, and
    would turn a simulated process death into silently-continuing
    execution, voiding every durability check built on it.  Broad
    ``except Exception`` cannot catch SimulatedCrash but is flagged too:
    it hides real defects behind the same pattern.  The crash harness
    itself (``crashsim/``) and the injector (``faults.py``) are exempt —
    catching the crash is their job.
    """

    rule_id = "REP001"
    summary = (
        "no bare except / except BaseException / except Exception in "
        "library code (crashsim/ and faults.py exempt)"
    )

    _BROAD = {"BaseException", "Exception"}

    def _names(self, node: Optional[ast.expr]) -> List[Optional[str]]:
        if node is None:
            return [None]
        if isinstance(node, ast.Tuple):
            return [name for e in node.elts for name in self._names(e)]
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Attribute):
            return [node.attr]
        return []

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_segment("crashsim") or ctx.filename == "faults.py":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for name in self._names(node.type):
                if name is None:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "bare 'except:' swallows SimulatedCrash (and "
                        "everything else); catch specific exceptions",
                    )
                elif name == "BaseException":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "'except BaseException' swallows SimulatedCrash; "
                        "catch specific exceptions or re-raise",
                    )
                elif name == "Exception":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "'except Exception' is too broad for library "
                        "code; catch the exceptions the block can raise",
                    )


@register
class BufferBypassRule(LintRule):
    """Tree code must not talk to the disk behind the buffer pool.

    Every leaf I/O must be billed through
    :class:`~repro.storage.buffer.BufferPool` (the paper's accounting
    model); a direct ``read_page``/``write_page`` from tree-level code
    would produce unaccounted disk accesses and quietly falsify the
    Section 4–5 cost comparisons.  The storage layer itself, the
    persistence snapshotter, and the crash harness legitimately touch
    pages and are exempt.
    """

    rule_id = "REP002"
    summary = (
        "no direct DiskManager.read_page/write_page from rtree/, core/ "
        "or extensions/ (storage/, persistence.py, crashsim/ exempt)"
    )

    _BANNED = {"read_page", "write_page"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_segment("rtree", "core", "extensions"):
            return
        if ctx.in_segment("storage", "crashsim"):
            return
        if ctx.filename == "persistence.py":
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._BANNED
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"direct page I/O '.{node.func.attr}()' bypasses the "
                    "BufferPool accounting path; go through the buffer "
                    "pool so the access is billed",
                )


@register
class CodecLayoutRule(LintRule):
    """Struct format strings must match the declared node field layout.

    The codec's entry formats (``_INDEX_FMT``/``_CLASSIC_FMT``/
    ``_RUM_FMT``) and the header format must pack exactly the byte sizes
    declared by ``repro.rtree.node`` (``*_ENTRY_BYTES``,
    ``NODE_HEADER_BYTES``) and carry the right number of fields — a
    silent drift (say, dropping the stamp from the RUM layout) would
    corrupt every page on disk while still "working" in memory.  The
    byte constants are read from the scanned tree when present and fall
    back to the canonical paper layout.
    """

    rule_id = "REP003"
    summary = (
        "codec struct format strings must agree with the declared node "
        "entry sizes and field counts"
    )

    #: format-constant name -> (size-constant name, canonical size,
    #: expected number of packed fields)
    _LAYOUTS = {
        "_HEADER_FMT": ("NODE_HEADER_BYTES", 32, 5),
        "_INDEX_FMT": ("INDEX_ENTRY_BYTES", 40, 5),
        "_CLASSIC_FMT": ("CLASSIC_LEAF_ENTRY_BYTES", 40, 5),
        "_RUM_FMT": ("RUM_LEAF_ENTRY_BYTES", 56, 7),
    }

    def _declared_sizes(
        self, contexts: Sequence[FileContext]
    ) -> Dict[str, int]:
        sizes: Dict[str, int] = {}
        wanted = {size_name for size_name, _, _ in self._LAYOUTS.values()}
        for ctx in contexts:
            # Only rtree/node.py declares the canonical layout; other
            # modules (extensions/btree.py, rtree/secondary_index.py)
            # reuse the same constant names for unrelated structures.
            if ctx.filename != "node.py" or not ctx.in_segment("rtree"):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in wanted
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, int)
                    ):
                        sizes[target.id] = node.value.value
        return sizes

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Tuple[FileContext, int, int, str]]:
        declared = self._declared_sizes(contexts)
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Name)
                        and target.id in self._LAYOUTS
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                    ):
                        continue
                    fmt = node.value.value
                    size_name, canonical, n_fields = self._LAYOUTS[target.id]
                    expected = declared.get(size_name, canonical)
                    try:
                        kernel = struct.Struct("<" + fmt)
                    except struct.error as exc:
                        yield (
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"{target.id} = {fmt!r} is not a valid struct "
                            f"format: {exc}",
                        )
                        continue
                    if kernel.size != expected:
                        yield (
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"{target.id} = {fmt!r} packs {kernel.size} "
                            f"bytes but {size_name} declares {expected}",
                        )
                        continue
                    got_fields = len(kernel.unpack(b"\x00" * kernel.size))
                    if got_fields != n_fields:
                        yield (
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"{target.id} = {fmt!r} packs {got_fields} "
                            f"fields but the node layout declares "
                            f"{n_fields}",
                        )


@register
class DeterminismRule(LintRule):
    """Experiments and workloads must be reproducible.

    Results in ``experiments/`` and ``workload/`` are compared across
    runs, machines, and CI; a stray ``time.time()`` or an unseeded
    ``random.Random()`` / module-level ``random.random()`` makes figures
    irreproducible.  All randomness must flow from an explicitly seeded
    ``random.Random(seed)``.  CPU timing (``time.process_time``,
    ``time.perf_counter``) is reporting-only and allowed.
    """

    rule_id = "REP004"
    summary = (
        "no wall-clock time.time() or unseeded randomness in "
        "experiments/ and workload/"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_segment("experiments", "workload"):
            return
        # local name -> (module, original name) for from-imports.
        from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time",
                "random",
                "datetime",
            ):
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            found = self._classify(node, from_imports)
            if found is not None:
                yield (node.lineno, node.col_offset, found)

    def _classify(
        self,
        call: ast.Call,
        from_imports: Dict[str, Tuple[str, str]],
    ) -> Optional[str]:
        func = call.func
        module: Optional[str] = None
        name: Optional[str] = None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            module, name = func.value.id, func.attr
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Attribute
        ):
            # datetime.datetime.now()
            if (
                isinstance(func.value.value, ast.Name)
                and func.value.value.id == "datetime"
            ):
                module, name = "datetime", func.attr
        elif isinstance(func, ast.Name) and func.id in from_imports:
            module, name = from_imports[func.id]

        if module == "time" and name == "time":
            return (
                "wall-clock time.time() in a deterministic experiment; "
                "use time.process_time()/perf_counter() for reporting "
                "only, never for behaviour"
            )
        if module == "datetime" and name in ("now", "utcnow", "today"):
            return (
                f"datetime.{name}() makes the experiment depend on the "
                "wall clock; thread a fixed value through instead"
            )
        if module == "random":
            if name == "Random":
                if not call.args and not call.keywords:
                    return (
                        "random.Random() without a seed is "
                        "irreproducible; pass an explicit seed"
                    )
                return None
            if name == "seed":
                return None
            return (
                f"module-level random.{name}() draws from the shared "
                "unseeded RNG; use an explicitly seeded random.Random"
            )
        return None


@register
class MutableDefaultRule(LintRule):
    """No mutable default arguments.

    A ``def f(x=[])`` default is created once and shared by every call —
    state leaks across invocations.  Use ``None`` plus an inside-the-
    function default instead.
    """

    rule_id = "REP005"
    summary = "no mutable default arguments (list/dict/set literals or calls)"

    _CTORS = {"list", "dict", "set"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._CTORS
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in _walk_functions(ctx.tree):
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield (
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {fn.name}(); use "
                        "None and create the value inside the function",
                    )


@register
class NoPrintRule(LintRule):
    """Library code must not print.

    Diagnostics go through ``repro.obs`` (events, exporters, the logging
    sink); stdout belongs to the CLIs.  Report renderers
    (``experiments/``), ``__main__.py`` entry points, and ``cli.py``
    modules are exempt — emitting text is their purpose.
    """

    rule_id = "REP006"
    summary = (
        "no print() in library code (experiments/, __main__.py and "
        "cli.py exempt); route output through repro.obs"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_segment("experiments"):
            return
        if ctx.filename in ("__main__.py", "cli.py"):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "print() in library code; emit an obs event or use "
                    "an exporter instead",
                )


@register
class ObsPropagationRule(LintRule):
    """Instrumented classes must expose ``attach_obs``.

    The observability cascade works because every component that caches
    bound instruments (``self._obs_* = ...``) also implements
    ``attach_obs(obs)`` so attaching — and, crucially, *detaching* with
    ``None``/level ``off`` — reaches it.  A class that binds instruments
    without the method would silently fall out of the cascade and keep
    stale instruments after a detach.
    """

    rule_id = "REP007"
    summary = (
        "classes in storage/ and core/ that bind _obs_* instruments "
        "must define attach_obs(obs)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_segment("storage", "core"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            has_attach = False
            binds_obs = False
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name == "attach_obs":
                    has_attach = len(item.args.args) >= 2
                for sub in ast.walk(item):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, ast.Store)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and sub.attr.startswith("_obs")
                    ):
                        binds_obs = True
            if binds_obs and not has_attach:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"class {node.name} binds _obs_* instruments but "
                    "defines no attach_obs(obs); it would fall out of "
                    "the observability cascade",
                )


@register
class NoAssertRule(LintRule):
    """``assert`` is not runtime validation in library code.

    Asserts vanish under ``python -O``, so a structural check written as
    an assert is a check that production can silently skip.  Library
    code must raise a real exception
    (:class:`~repro.lint.invariants.InvariantViolation`, ``ValueError``,
    ...); tests keep using ``assert`` freely (test files are exempt and
    normally not scanned at all).
    """

    rule_id = "REP008"
    summary = (
        "no assert for runtime validation in library code (stripped "
        "under python -O); raise a real exception"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        name = ctx.filename
        if name.startswith("test_") or name == "conftest.py":
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield (
                    node.lineno,
                    node.col_offset,
                    "assert used for runtime validation; it disappears "
                    "under python -O — raise an exception instead",
                )


@register
class HotPathKernelRule(LintRule):
    """Hot-path modules must batch MBR predicates through the kernels.

    Modules that declare ``HOT_PATH = True`` at module level (under
    ``rtree/`` or ``storage/``) are on the measured query/update path;
    their bulk geometry work is expected to go through
    :mod:`repro.kernels` (``intersect_indices``, ``enlargements``,
    ``split_tables``, ...), which the numpy backend vectorises.  A
    scalar :class:`~repro.rtree.geometry.Rect` predicate call inside a
    loop or comprehension on such a module is almost always a regression
    back to the per-entry path the kernels replaced — one method
    dispatch and one Rect temporary per entry, invisible to both
    backends.  Genuine single-shot uses inside a loop (e.g. one
    containment probe per *node* rather than per entry) stay allowed via
    ``# lint: disable=REP009`` with a justification.  Modules without
    the marker are untouched: the marker is the module author's opt-in
    statement that this file is hot.
    """

    rule_id = "REP009"
    summary = (
        "modules marked HOT_PATH = True (rtree/, storage/) must not "
        "call scalar Rect predicates inside loops; use repro.kernels"
    )

    #: Rect predicate/metric methods with a bulk kernel equivalent.
    _PREDICATES = {
        "intersects",
        "contains",
        "contains_point",
        "overlap_area",
        "enlargement",
        "min_dist",
    }

    _LOOPS = (
        ast.For,
        ast.AsyncFor,
        ast.While,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )

    def _is_hot(self, tree: ast.Module) -> bool:
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "HOT_PATH"
                ):
                    return (
                        isinstance(node.value, ast.Constant)
                        and node.value.value is True
                    )
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_segment("rtree", "storage"):
            return
        if not self._is_hot(ctx.tree):
            return
        seen: Set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, self._LOOPS):
                continue
            for node in ast.walk(loop):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._PREDICATES
                    and id(node) not in seen
                ):
                    seen.add(id(node))
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"scalar Rect predicate '.{node.func.attr}()' in "
                        "a loop on a HOT_PATH module; batch it through a "
                        "repro.kernels bulk kernel (or justify with "
                        "'# lint: disable=REP009')",
                    )


@register
class ObsBoundInstrumentRule(LintRule):
    """Hot-path code reaches telemetry only via attach-time instruments.

    The observability stack's overhead contract (<2% at ``metrics``, a
    true no-op at ``off``) rests on one discipline: tree/core/storage
    code touches telemetry through instruments bound once in
    ``attach_obs`` (``self._obs_* = reg.counter(...)``) and thereafter
    pays a single ``None`` check per op.  A registry lookup
    (``reg.counter("x")`` — a dict lookup plus instrument construction)
    or a ``get_default_obs()`` call on the hot path re-introduces
    per-operation name hashing that the A/B bench cannot see until it
    regresses.  Registry methods are therefore only allowed inside an
    ``attach_obs`` definition in these segments; ``obs/``,
    ``experiments/``, and ``analysis/`` are not scanned (they are the
    cold side).
    """

    rule_id = "REP010"
    summary = (
        "rtree/, core/ and storage/ must reach the registry and flight "
        "recorder only via instruments bound inside attach_obs"
    )

    _REGISTRY_METHODS = {"counter", "gauge", "histogram"}
    _REGISTRY_NAMES = {"reg", "registry"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_segment("rtree", "core", "storage"):
            return
        allowed: Set[int] = set()
        for fn in _walk_functions(ctx.tree):
            if fn.name == "attach_obs":
                for sub in ast.walk(fn):
                    allowed.add(id(sub))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or id(node) in allowed:
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "get_default_obs"
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr == "get_default_obs"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "get_default_obs() outside attach_obs on a hot-path "
                    "module; bind instruments in attach_obs instead",
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._REGISTRY_METHODS
            ):
                recv = func.value
                if (
                    isinstance(recv, ast.Name)
                    and recv.id in self._REGISTRY_NAMES
                ) or (
                    isinstance(recv, ast.Attribute)
                    and recv.attr == "registry"
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"registry lookup '.{func.attr}()' outside "
                        "attach_obs on a hot-path module; bind the "
                        "instrument once in attach_obs and use the bound "
                        "reference",
                    )


#: Ordered rule-id -> one-line summary (docs and ``--list-rules``).
def rule_catalog() -> Dict[str, str]:
    from .engine import all_rules

    return {
        rule_id: cls.summary for rule_id, cls in all_rules().items()
    }
