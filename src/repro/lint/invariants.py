"""Runtime structural invariant validator for the trees.

:func:`check_tree` walks a tree (classic R-tree or RUM-tree) and raises
:class:`InvariantViolation` on the first structural inconsistency.  It is
the oracle behind ``RTreeBase.check_invariants()``, is called directly by
the test suite on deliberately corrupted trees, and runs inside the
crash-simulation harness after every recovery option so that structural
corruption — not just lost or ghost objects — fails the crash matrix.

Checked invariant classes:

* **Fanout bounds** — every non-root node holds between the declared
  minimum and the capacity for its kind (leaf/index).
* **MBR containment** — every directory entry's rectangle equals (hence
  contains) the MBR of its child subtree, and the parent directory maps
  each child back to the node that references it.
* **Balance** — all leaves sit at the same depth, and that depth matches
  the tree's recorded height.
* **Leaf ring** — when the tree maintains the circular leaf ring, the
  ring visits every leaf exactly once with consistent back-pointers.
* **Memo consistency (Sec. 3, Lemma 1)** — for a RUM-tree, per object:
  at most one leaf entry is classified LATEST, the number of OBSOLETE
  leaf entries never exceeds the memo's ``N_old`` upper bound, and no
  leaf stamp exceeds the memo's ``S_latest``.
* **Stamp monotonicity** — every leaf stamp is strictly below the stamp
  counter's next value, so recovered counters cannot re-issue a stamp
  that is already in the tree.

The validator reads pages through the tree's uncounted introspection path
(``_peek_node``), so calling it never perturbs the I/O accounting that
the experiments measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtree.base import RTreeBase
    from repro.rtree.geometry import Rect
    from repro.rtree.node import Node


class InvariantViolation(AssertionError):
    """A structural invariant does not hold.

    Subclasses ``AssertionError`` so call sites that predate the
    validator (``check_invariants()`` users, pytest.raises blocks) keep
    working unchanged.
    """


def _fail(message: str) -> None:
    raise InvariantViolation(message)


def _check_structure(tree: "RTreeBase") -> List[int]:
    """Fanout, MBR containment, parent directory, balance.

    Returns the page ids of all leaves, in visit order, for the ring
    check.
    """
    leaf_depths: Set[int] = set()
    leaf_ids: List[int] = []

    def visit(node: "Node", depth: int) -> "Rect":
        if node.is_leaf:
            leaf_depths.add(depth)
            leaf_ids.append(node.page_id)
        if node.page_id != tree.root_id:
            cap = tree.leaf_cap if node.is_leaf else tree.index_cap
            minimum = tree.min_leaf if node.is_leaf else tree.min_index
            if not minimum <= len(node.entries) <= cap:
                _fail(
                    f"node {node.page_id}: {len(node.entries)} entries "
                    f"outside [{minimum}, {cap}]"
                )
        if not node.is_leaf:
            for entry in node.entries:
                if tree.parent.get(entry.child_id) != node.page_id:
                    _fail(
                        f"parent directory stale for child {entry.child_id}"
                    )
                child = tree._peek_node(entry.child_id)
                child_mbr = visit(child, depth + 1)
                if entry.rect != child_mbr:
                    _fail(
                        f"directory MBR of child {entry.child_id} is stale"
                    )
        return node.mbr()

    root = tree._peek_node(tree.root_id)
    if root.entries:
        visit(root, 0)
        if len(leaf_depths) > 1:
            _fail("tree is not height-balanced")
        if leaf_depths and leaf_depths != {tree.height - 1}:
            _fail(
                f"height {tree.height} but leaves at depth {leaf_depths}"
            )
    return leaf_ids


def _check_ring(tree: "RTreeBase", expected: Set[int]) -> None:
    """The circular leaf ring visits every leaf exactly once."""
    start = next(iter(expected))
    seen: Set[int] = set()
    current = start
    for _ in range(len(expected) + 1):
        if current not in expected:
            _fail(f"ring visits foreign page {current}")
        if current in seen:
            _fail(f"ring revisits page {current}")
        seen.add(current)
        node = tree._peek_node(current)
        successor = tree._peek_node(node.next_leaf)
        if successor.prev_leaf != current:
            _fail(f"ring back-pointer broken at {node.next_leaf}")
        current = node.next_leaf
        if current == start:
            break
    if seen != expected:
        _fail(f"ring covers {len(seen)} of {len(expected)} leaves")


def _check_memo(tree: "RTreeBase") -> None:
    """Memo-vs-leaf consistency and stamp monotonicity (RUM trees)."""
    memo = tree.memo  # type: ignore[attr-defined]
    stamps = tree.stamps  # type: ignore[attr-defined]
    next_stamp = stamps.current
    latest_seen: Set[int] = set()
    obsolete_counts: Dict[int, int] = {}
    for entry in tree.iter_leaf_entries():
        if entry.stamp >= next_stamp:
            _fail(
                f"leaf entry (oid={entry.oid}, stamp={entry.stamp}) is "
                f"stamped at or above the counter's next stamp "
                f"{next_stamp}; a reused stamp would break the "
                f"latest/obsolete ordering"
            )
        um = memo.get(entry.oid)
        if um is not None and entry.stamp > um.s_latest:
            _fail(
                f"leaf entry (oid={entry.oid}, stamp={entry.stamp}) is "
                f"newer than the memo's S_latest={um.s_latest}; the "
                f"memo missed an update"
            )
        if memo.check_status(entry.oid, entry.stamp) == "LATEST":
            if entry.oid in latest_seen:
                _fail(
                    f"oid {entry.oid} has more than one LATEST leaf "
                    f"entry; queries would return duplicates"
                )
            latest_seen.add(entry.oid)
        else:
            obsolete_counts[entry.oid] = (
                obsolete_counts.get(entry.oid, 0) + 1
            )
    for oid, count in obsolete_counts.items():
        um = memo.get(oid)
        n_old = 0 if um is None else um.n_old
        if count > n_old:
            _fail(
                f"oid {oid} has {count} obsolete leaf entries but the "
                f"memo bounds them at N_old={n_old} (Lemma 1 violated: "
                f"the cleaner could never drain them)"
            )


def check_tree(tree: "RTreeBase") -> None:
    """Validate every structural invariant of ``tree``.

    Raises :class:`InvariantViolation` (an ``AssertionError`` subclass)
    describing the first violation found; returns ``None`` on a healthy
    tree.  Works on any :class:`~repro.rtree.base.RTreeBase`; the memo
    and stamp checks engage automatically when the tree carries a
    ``memo``/``stamps`` pair (i.e. for RUM trees).
    """
    leaf_ids = _check_structure(tree)
    if tree.maintain_leaf_ring and leaf_ids:
        _check_ring(tree, set(leaf_ids))
    if getattr(tree, "memo", None) is not None and getattr(
        tree, "stamps", None
    ) is not None:
        _check_memo(tree)
