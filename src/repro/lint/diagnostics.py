"""Diagnostic objects and suppression-comment handling.

A diagnostic pins one rule violation to a file/line/column.  Violations
can be silenced per rule with suppression comments:

* ``# lint: disable=REP001`` (trailing on the flagged line, or standing
  alone on the line directly above it) silences that rule for the line;
* ``# lint: disable-file=REP001`` anywhere in the file silences the rule
  for the whole file.

Several rule ids may be given separated by commas.  Suppressions are
intentionally *per rule*: there is no blanket ``disable=all``, so every
silenced finding names exactly what it silences — the justification can
ride along in the same comment after the rule list.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

#: ``# lint: disable=REP001,REP005  optional free-text justification``
_LINE_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9, ]+)")
_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=([A-Z0-9, ]+)")


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at a precise source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def _parse_ids(blob: str) -> FrozenSet[str]:
    return frozenset(part.strip() for part in blob.split(",") if part.strip())


class SuppressionIndex:
    """Which rules are silenced on which lines of one file."""

    def __init__(self, lines: Sequence[str]):
        per_line: Dict[int, Set[str]] = {}
        file_wide: Set[str] = set()
        for lineno, text in enumerate(lines, start=1):
            match = _FILE_RE.search(text)
            if match:
                file_wide |= _parse_ids(match.group(1))
                continue
            match = _LINE_RE.search(text)
            if not match:
                continue
            ids = _parse_ids(match.group(1))
            per_line.setdefault(lineno, set()).update(ids)
            if text.lstrip().startswith("#"):
                # A standalone suppression comment covers the next line.
                per_line.setdefault(lineno + 1, set()).update(ids)
        self._per_line = per_line
        self._file_wide = frozenset(file_wide)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_wide:
            return True
        return rule_id in self._per_line.get(line, ())

    def filter(self, diagnostics: List[Diagnostic]) -> List[Diagnostic]:
        return [
            d
            for d in diagnostics
            if not self.is_suppressed(d.rule_id, d.line)
        ]


def sort_key(diag: Diagnostic) -> Tuple[str, int, int, str]:
    return (diag.path, diag.line, diag.col, diag.rule_id)
