"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes: 0 — clean; 1 — diagnostics reported; 2 — bad invocation
(unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from .engine import all_rules, run_lint


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Project-specific AST linter: enforces the repro conventions "
            "(crash-safety excepts, buffer-pool accounting, codec "
            "layouts, deterministic experiments, ...)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, cls in all_rules().items():
            print(f"{rule_id}  {cls.summary}")
        return 0

    paths = [pathlib.Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    try:
        diagnostics = run_lint(
            paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for diag in diagnostics:
        print(diag.render())
    if diagnostics:
        print(
            f"{len(diagnostics)} problem(s) found", file=sys.stderr
        )
        return 1
    return 0
