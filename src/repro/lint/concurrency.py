"""Concurrency-correctness lint rules (REP011–REP015).

These rules mechanise the lock discipline documented in
``docs/CONCURRENCY.md``:

* **REP011** — every explicit ``*.acquire_read()`` / ``*.acquire_write()``
  / ``*.acquire()`` *statement* must be release-paired on all paths: the
  acquire must sit inside a ``try`` whose ``finally`` releases the same
  receiver, or be immediately followed by such a ``try``.  (``with``
  blocks never trigger the rule — the context manager pairs for you;
  conditional try-lock idioms assign the result and are out of scope.)
* **REP012** — a project-wide lock-order graph is built from
  syntactically nested ``with``-statements over lock-like expressions
  (names matching lock/latch/mutex/guard/cond, ``.read()`` /
  ``.write()`` latch holds, and ``GranularLockManager.locked`` call
  sites).  Any cycle in the graph is an error: two threads taking the
  same pair of locks in opposite orders is a deadlock waiting for load.
* **REP013** — attributes annotated ``# guarded-by: <lock>`` on their
  defining assignment may only be accessed inside a ``with`` block
  holding that lock, or in a method annotated ``# holds: <lock>``
  (a documented caller-holds contract).  Constructors and the
  ``attach_obs`` / ``attach_racecheck`` cascades are exempt — they run
  before the object is shared.
* **REP014** — no blocking I/O while holding a stamp-counter lock.  The
  stamp lock is the hottest latch in the system (every update takes
  it); a page read under it would serialise the whole update path.
* **REP015** — ``threading`` synchronisation primitives may only be
  constructed inside :mod:`repro.concurrency` (tests exempt).  Going
  through :func:`repro.concurrency.primitives.make_lock` keeps every
  lock visible to the Eraser race detector.

Scoping follows the engine convention: by path segment, so fixtures
arranged like the real tree lint identically.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import FileContext, LintRule, register

Finding = Tuple[int, int, str]

#: Explicit acquire methods and their matching releases (REP011).
_ACQUIRE_TO_RELEASE = {
    "acquire": "release",
    "acquire_read": "release_read",
    "acquire_write": "release_write",
}

#: Identifier fragments that mark an expression as lock-like (REP012).
_LOCKISH_RE = re.compile(r"(lock|latch|mutex|guard|cond)", re.IGNORECASE)

#: ``# guarded-by: <lock>`` trailing an attribute's defining assignment.
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: ``# holds: <lock>`` on (or directly above) a ``def`` line.
_HOLDS_RE = re.compile(r"#\s*holds:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Methods REP013 never checks: they run before the object is shared
#: (construction) or are the instrumentation cascade itself, whose
#: gauge lambdas legitimately read guarded state at registration time.
_GUARD_EXEMPT_METHODS = {
    "__init__",
    "__new__",
    "__del__",
    "attach_obs",
    "attach_racecheck",
}

#: Call names that block on I/O (REP014).
_BLOCKING_CALLS = {
    "read_page",
    "write_page",
    "fsync",
    "sync",
    "flush",
    "force",
    "open",
}

#: threading primitives that must be built via repro.concurrency (REP015).
_THREADING_PRIMITIVES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
}


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain (subscripts are skipped)."""
    if isinstance(node, ast.Subscript):
        return _dotted(node.value)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _peel_calls(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Call):
        node = node.func
    return node


def _is_test_context(ctx: FileContext) -> bool:
    return (
        ctx.in_segment("tests")
        or ctx.filename.startswith("test_")
        or ctx.filename == "conftest.py"
    )


@register
class ReleasePairingRule(LintRule):
    """REP011: explicit acquires must be release-paired on all paths.

    A statement-level ``x.acquire*()`` escapes pairing on any exception
    between it and the release; the only constructs that pair on *all*
    paths are ``with`` (preferred) and ``try/finally``.  The rule
    accepts an acquire whose matching ``release*()`` on the same
    receiver appears in the ``finally`` of an enclosing ``try`` or of
    the ``try`` that immediately follows the acquire statement.
    """

    rule_id = "REP011"
    summary = (
        "explicit lock acquire without a with-block or try/finally "
        "release on the same receiver"
    )

    def _releases(
        self, try_node: ast.Try, release_name: str, receiver_key: str
    ) -> bool:
        for stmt in try_node.finalbody:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == release_name
                    and ast.dump(node.func.value) == receiver_key
                ):
                    return True
        return False

    def _scan(
        self,
        stmts: Sequence[ast.stmt],
        try_stack: List[ast.Try],
        out: List[Finding],
    ) -> None:
        for index, stmt in enumerate(stmts):
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr in _ACQUIRE_TO_RELEASE
            ):
                attr = stmt.value.func.attr
                release = _ACQUIRE_TO_RELEASE[attr]
                key = ast.dump(stmt.value.func.value)
                follower = stmts[index + 1] if index + 1 < len(stmts) else None
                paired = any(
                    self._releases(t, release, key) for t in try_stack
                )
                if (
                    not paired
                    and isinstance(follower, ast.Try)
                    and self._releases(follower, release, key)
                ):
                    paired = True
                if not paired:
                    out.append(
                        (
                            stmt.lineno,
                            stmt.col_offset,
                            f"'{attr}' is not paired with '{release}' in a "
                            "finally block (use a with-block, or follow the "
                            "acquire with try/finally releasing the same "
                            "lock)",
                        )
                    )
            # Descend.  A function boundary resets the try stack: an
            # enclosing finally does not run around a *later* call of a
            # nested function.
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self._scan(stmt.body, [], out)
            elif isinstance(stmt, ast.Try):
                inner = try_stack + [stmt]
                self._scan(stmt.body, inner, out)
                for handler in stmt.handlers:
                    self._scan(handler.body, inner, out)
                self._scan(stmt.orelse, inner, out)
                self._scan(stmt.finalbody, try_stack, out)
            elif isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor)):
                self._scan(stmt.body, try_stack, out)
                self._scan(stmt.orelse, try_stack, out)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan(stmt.body, try_stack, out)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        out: List[Finding] = []
        self._scan(ctx.tree.body, [], out)
        return iter(out)


def _lock_node_name(expr: ast.expr, class_name: Optional[str]) -> Optional[str]:
    """Canonical graph-node name for a lock-like with-item, else None.

    ``self.tree_latch.write()`` -> ``Class.tree_latch``;
    ``self.locks.locked(reqs)`` -> ``Class.locks``; names are syntactic
    (scoped by the enclosing class), which can split one runtime lock
    into several nodes but never merges two distinct locks into one —
    the graph stays sound for cycle detection, just not complete.
    """
    node = _peel_calls(expr)
    stripped: Optional[str] = None
    if isinstance(node, ast.Attribute) and node.attr in (
        "read",
        "write",
        "locked",
    ):
        stripped = node.attr
        node = _peel_calls(node.value)
    dotted = _dotted(node)
    if dotted is None:
        return None
    base = dotted
    if base.startswith("self."):
        base = base[len("self."):]
        canonical = f"{class_name}.{base}" if class_name else base
    else:
        canonical = base
    tail = base.rsplit(".", 1)[-1]
    if stripped == "locked" or _LOCKISH_RE.search(tail):
        return canonical
    return None


@register
class LockOrderRule(LintRule):
    """REP012: the project-wide lock-order graph must be acyclic.

    Edges are collected from syntactic nesting only (an outer ``with``
    over one lock enclosing an inner ``with`` over another); calls into
    helper functions do not contribute edges, so the graph understates
    the true order — which is the safe direction for a deadlock check
    gate (no false cycles from merged nodes, see
    :func:`_lock_node_name`).  Self-edges are skipped: re-acquisition
    of one lock is the reentrancy contract's problem (enforced at
    runtime by :class:`~repro.concurrency.locks.ReadWriteLock`), not an
    ordering problem.
    """

    rule_id = "REP012"
    summary = "lock-order graph has a cycle (potential deadlock)"

    def _collect(
        self,
        node: ast.AST,
        class_name: Optional[str],
        held: List[str],
        ctx: FileContext,
        edges: Dict[Tuple[str, str], Tuple[FileContext, int, int]],
    ) -> None:
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                self._collect(child, node.name, held, ctx, edges)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                self._collect(child, class_name, [], ctx, edges)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            names: List[str] = []
            for item in node.items:
                name = _lock_node_name(item.context_expr, class_name)
                if name is not None:
                    for outer in held:
                        if outer != name:
                            edge = (outer, name)
                            edges.setdefault(
                                edge,
                                (ctx, node.lineno, node.col_offset),
                            )
                    names.append(name)
            held.extend(names)
            for child in node.body:
                self._collect(child, class_name, held, ctx, edges)
            del held[len(held) - len(names):]
            return
        for child in ast.iter_child_nodes(node):
            self._collect(child, class_name, held, ctx, edges)

    def _path(
        self,
        start: str,
        goal: str,
        adjacency: Dict[str, Set[str]],
    ) -> Optional[List[str]]:
        frontier = [start]
        parents: Dict[str, str] = {}
        seen = {start}
        while frontier:
            current = frontier.pop(0)
            if current == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            for nxt in sorted(adjacency.get(current, ())):
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = current
                    frontier.append(nxt)
        return None

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Tuple[FileContext, int, int, str]]:
        edges: Dict[Tuple[str, str], Tuple[FileContext, int, int]] = {}
        for ctx in contexts:
            self._collect(ctx.tree, None, [], ctx, edges)
        adjacency: Dict[str, Set[str]] = {}
        for outer, inner in edges:
            adjacency.setdefault(outer, set()).add(inner)
        for (outer, inner), (ctx, line, col) in sorted(
            edges.items(), key=lambda kv: (kv[1][0].display, kv[1][1])
        ):
            back = self._path(inner, outer, adjacency)
            if back is not None:
                cycle = " -> ".join([outer] + back)
                yield (
                    ctx,
                    line,
                    col,
                    f"lock-order cycle: '{outer}' is acquired before "
                    f"'{inner}' here, closing the cycle {cycle}",
                )


@register
class GuardedByRule(LintRule):
    """REP013: guarded attributes are only touched under their lock.

    The defining assignment carries ``# guarded-by: <lock>``; every
    other ``self.<attr>`` access in the class must then sit inside a
    ``with`` whose expression mentions ``<lock>``, or in a method whose
    ``def`` line (or the comment line above it) declares
    ``# holds: <lock>`` — the documented caller-holds contract.
    """

    rule_id = "REP013"
    summary = "guarded attribute accessed without holding its lock"

    def _method_holds(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Set[str]:
        holds: Set[str] = set()
        for lineno in (fn.lineno, fn.lineno - 1):
            if 1 <= lineno <= len(ctx.lines):
                holds.update(_HOLDS_RE.findall(ctx.lines[lineno - 1]))
        return holds

    def _scan_method(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        guards: Dict[str, str],
        out: List[Finding],
    ) -> None:
        holds = self._method_holds(ctx, fn)
        with_stack: List[str] = []

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                texts = [ast.unparse(i.context_expr) for i in node.items]
                with_stack.extend(texts)
                for child in node.body:
                    visit(child)
                del with_stack[len(with_stack) - len(texts):]
                return
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in guards
            ):
                lock = guards[node.attr]
                if lock not in holds and not any(
                    lock in text for text in with_stack
                ):
                    out.append(
                        (
                            node.lineno,
                            node.col_offset,
                            f"'self.{node.attr}' is guarded-by '{lock}' "
                            "but accessed without holding it (wrap in "
                            f"'with ...{lock}...' or annotate the method "
                            f"'# holds: {lock}')",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in fn.body:
            visit(stmt)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        out: List[Finding] = []
        for klass in ast.walk(ctx.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            guards: Dict[str, str] = {}
            for node in ast.walk(klass):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and 1 <= node.lineno <= len(ctx.lines)
                    ):
                        match = _GUARDED_RE.search(ctx.lines[node.lineno - 1])
                        if match:
                            guards[target.attr] = match.group(1)
            if not guards:
                continue
            for member in klass.body:
                if not isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if member.name in _GUARD_EXEMPT_METHODS:
                    continue
                self._scan_method(ctx, member, guards, out)
        return iter(out)


@register
class StampLockIORule(LintRule):
    """REP014: no blocking I/O while holding a stamp-counter lock.

    Stamp-lock blocks are recognised syntactically: a ``with`` whose
    expression mentions ``stamp`` (``locks.locked([("stamp_counter",
    ...)])``, a ``stamp_latch``, ...), or any lock-like ``with`` inside
    a class whose name contains ``Stamp``.
    """

    rule_id = "REP014"
    summary = "blocking I/O call under the stamp-counter lock"

    def _is_stamp_lock(self, text: str, class_name: Optional[str]) -> bool:
        lowered = text.lower()
        if "stamp" in lowered:
            return True
        return (
            class_name is not None
            and "Stamp" in class_name
            and _LOCKISH_RE.search(lowered) is not None
        )

    def _blocking_calls(self, body: Sequence[ast.stmt]) -> Iterator[Finding]:
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                name: Optional[str] = None
                if isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                if name is None:
                    continue
                if name in _BLOCKING_CALLS or name.startswith("append_"):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"blocking call '{name}' while holding a "
                        "stamp-counter lock (stamp latches are pure "
                        "latches: increment and get out)",
                    )

    def _scan(
        self,
        node: ast.AST,
        class_name: Optional[str],
        out: List[Finding],
        seen: Set[Tuple[int, int]],
    ) -> None:
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                self._scan(child, node.name, out, seen)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
            self._is_stamp_lock(ast.unparse(i.context_expr), class_name)
            for i in node.items
        ):
            for finding in self._blocking_calls(node.body):
                key = (finding[0], finding[1])
                if key not in seen:
                    seen.add(key)
                    out.append(finding)
        for child in ast.iter_child_nodes(node):
            self._scan(child, class_name, out, seen)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        out: List[Finding] = []
        self._scan(ctx.tree, None, out, set())
        return iter(out)


@register
class ThreadingPrimitiveRule(LintRule):
    """REP015: threading primitives are built only in repro.concurrency.

    Everything else goes through
    :func:`repro.concurrency.primitives.make_lock` (or ``make_rlock`` /
    ``make_condition``), which hands out race-detector-tracked wrappers
    when the checker is active.  A raw ``threading.Lock()`` elsewhere is
    invisible to the detector: accesses under it look unprotected and
    the lockset algorithm reports false races — or worse, the lock
    silently exempts itself from the discipline the linter enforces.
    Tests are exempt (they build scaffolding locks freely).
    """

    rule_id = "REP015"
    summary = (
        "threading primitive constructed outside repro.concurrency "
        "(use primitives.make_lock and friends)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_segment("concurrency") or _is_test_context(ctx):
            return iter(())
        module_aliases: Set[str] = set()
        imported: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "threading":
                        module_aliases.add(alias.asname or "threading")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "threading":
                    for alias in node.names:
                        if alias.name in _THREADING_PRIMITIVES:
                            imported.add(alias.asname or alias.name)
        if not module_aliases and not imported:
            return iter(())
        out: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged: Optional[str] = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
                and func.attr in _THREADING_PRIMITIVES
            ):
                flagged = f"threading.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in imported:
                flagged = func.id
            if flagged is not None:
                out.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"'{flagged}()' constructed outside "
                        "repro.concurrency — use repro.concurrency."
                        "primitives.make_lock/make_rlock/make_condition",
                    )
                )
        return iter(out)
