"""Generality ablation: the memo approach on B+-trees, quadtrees and grid files.

The paper's conclusion claims the memo-based update approach carries over
to other index families; this bench verifies that the transplants beat
their classic-update counterparts on the same update-heavy workload.
"""

from conftest import archive, run_experiment

from repro.experiments import format_table
from repro.experiments.ablation_extensions import run_extension_ablation


def test_extension_ablation(benchmark):
    result = run_experiment(benchmark, run_extension_ablation)
    headers = ["structure", "approach", "update_io", "entries", "garbage"]
    archive(
        "ablation_extensions",
        [
            "Memo-based vs classic updates beyond R-trees (Section 6 claim)",
            format_table(
                headers,
                [[row.get(h, "") for h in headers] for row in result.rows],
            ),
        ],
    )
    cost = {
        (row["structure"], row["approach"]): row["update_io"]
        for row in result.rows
    }
    # The memo variant updates cheaper on all three structures.
    assert cost[("B+-tree", "memo")] < cost[("B+-tree", "classic")]
    assert cost[("quadtree", "memo")] < cost[("quadtree", "classic")]
    assert cost[("grid file", "memo")] < cost[("grid file", "classic")]
