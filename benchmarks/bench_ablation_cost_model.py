"""Section-4 cost-model validation (ablation).

Measures the per-update leaf I/O of all three update approaches and checks
each against its analytical estimate computed from the *actual* tree
statistics: Lemma 2 over the measured leaf MBRs (top-down), the 3/6/7 mix
over the measured placement mix (bottom-up), and ``2·(1+ir)``
(memo-based).  Also verifies the Section-4.1 garbage/memo bounds.
"""

from conftest import archive, run_experiment

from repro.experiments import format_table, run_cost_validation


def test_cost_model_validation(benchmark):
    result = run_experiment(benchmark, run_cost_validation)
    headers = ["approach", "measured_io", "predicted_io"]
    archive(
        "ablation_cost_model",
        [
            "Section 4 — measured vs predicted per-update I/O",
            format_table(
                headers,
                [[row.get(h, "") for h in headers] for row in result.rows],
            ),
        ],
    )
    rows = {row["approach"]: row for row in result.rows}

    # Top-down: Lemma 2 + 3 should be within a factor of the measurement
    # (it ignores condense/split I/O and stop-early variance).
    top_down = rows["top-down (R*)"]
    assert 0.4 * top_down["predicted_io"] <= top_down["measured_io"]
    assert top_down["measured_io"] <= 2.5 * top_down["predicted_io"]

    # Bottom-up: the 3/6/7 mix model tracks the measurement closely.
    bottom_up = rows["bottom-up (FUR)"]
    assert 0.6 * bottom_up["predicted_io"] <= bottom_up["measured_io"]
    assert bottom_up["measured_io"] <= 1.6 * bottom_up["predicted_io"]

    # Memo-based: measured leaf I/O tracks 2(1+ir) tightly (splits add a
    # little; skipped writes of clean token visits subtract a little).
    memo = next(v for k, v in rows.items() if k.startswith("memo-based"))
    assert abs(memo["measured_io"] - memo["predicted_io"]) < 0.8

    # Section 4.1 bounds hold in steady state.
    assert memo["garbage_ratio"] <= memo["garbage_bound"] * 1.05
    assert memo["memo_bytes"] <= memo["memo_bound_bytes"] * 1.05
