"""Figure 15 — update I/O of the RUM-tree under logging options I/II/III.

Asserts the paper's qualitative findings: Option I is cheapest, Option II
costs only marginally more (an occasional UM checkpoint), and Option III is
substantially more expensive (one forced log write per update — the paper
reports roughly +50%).
"""

from conftest import archive, run_experiment

from repro.experiments import format_table, run_fig15


def test_fig15_logging_options(benchmark):
    result = run_experiment(benchmark, run_fig15)
    headers = ["option", "update_io", "leaf_io", "log_io"]
    archive(
        "fig15_logging",
        [
            "Figure 15 — average update I/O per logging option",
            format_table(
                headers,
                [[row[h] for h in headers] for row in result.rows],
            ),
        ],
    )
    cost = {row["option"]: row["update_io"] for row in result.rows}
    log_io = {row["option"]: row["log_io"] for row in result.rows}

    # Option I <= Option II < Option III.
    assert cost["I"] <= cost["II"] + 1e-9
    assert cost["II"] < cost["III"]
    # Option II's surcharge over Option I is small (checkpoints amortise).
    assert cost["II"] - cost["I"] < 0.3
    # Option III pays roughly one extra (forced log) write per update.
    assert 0.8 <= log_io["III"] <= 1.6
    # ...which lands in the paper's "around 50% higher" ballpark.
    assert 1.2 <= cost["III"] / cost["I"] <= 2.0
