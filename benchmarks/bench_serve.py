#!/usr/bin/env python
"""Open-loop serving benchmark: saturation and latency vs shard count.

Drives the Figure-16 mixed workload through :class:`repro.serving.ShardRouter`
at 1, 2, and 4 shards with a multi-client open-loop generator
(:class:`repro.concurrency.throughput.OpenLoopHarness`).  Two runs per
shard count:

1. **saturation** — offered rate infinite; the achieved rate is the
   deployment's capacity at this concurrency;
2. **open loop** — offered rate at ~70% of the measured saturation; the
   p50/p95/p99 latency percentiles are measured from each operation's
   *scheduled* arrival, so queueing counts (no coordinated omission).

Each shard owns one simulated disk channel (``io_latency`` seconds per
leaf access, slept while holding only the shard's I/O lock), so shard
counts translate into I/O parallelism exactly as spindles would — the
headline number is the 4-shard speedup over 1 shard.  Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py [output.json]

Writes ``BENCH_serve.json`` at the repo root (or to the given path)::

    {
      "schema": "bench_serve/v1",
      "scale": <REPRO_BENCH_SCALE in effect>,
      "io_latency": ..., "n_clients": ..., "operations": ...,
      "shards": {
        "1": {"saturation_ops_per_sec": ...,
              "open_loop": {"offered_rate": ..., "achieved_rate": ...,
                             "p50_ms": ..., "p95_ms": ..., "p99_ms": ...,
                             "max_ms": ...},
              "migrations": ...},
        ...
      },
      "speedup_4_vs_1": ...,
      "metrics": {"serve.4shards.saturation": {"ops_per_sec": ...}, ...}
    }

The ``metrics`` block mirrors the ``bench_micro`` shape so
``scripts/bench_compare.py`` can diff two reports: saturation rates are
ops/sec directly, and each latency percentile appears as its inverse
(``1000 / p_ms``), keeping "higher is better" uniform across metrics.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Any, Dict, List

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.concurrency.throughput import OpenLoopHarness, OpenLoopResult
from repro.experiments.harness import bench_scale, scaled
from repro.serving import ShardRouter
from repro.workload.objects import default_network_workload
from repro.workload.queries import RangeQueryGenerator
from repro.workload.trace import QueryOp, UpdateOp, mixed_trace

SCHEMA = "bench_serve/v1"
DEFAULT_OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"

SHARD_COUNTS = (1, 2, 4)
#: Enough concurrent clients that the saturation probe is bound by the
#: shards' I/O channels, not by the client pool itself (at 4 shards a
#: fan-out query occupies several channels at once).
N_CLIENTS = 16
NODE_SIZE = 1024
UPDATE_FRACTION = 0.5  # the Figure-16 midpoint: queries and updates mixed
#: Simulated seconds of disk time per leaf access (one channel per
#: shard).  Large enough that I/O, not interpreter overhead, bounds
#: throughput — the regime where sharding pays, and the honest one: a
#: disk-resident index is I/O-bound by definition.
IO_LATENCY = 0.0008


def build_workload(n_objects: int, ops: int) -> List[Any]:
    """The Figure-16 mixed trace: network movers + uniform range queries."""
    objects = default_network_workload(
        n_objects, moving_distance=0.02, seed=47
    )
    queries = RangeQueryGenerator(side=0.05, seed=53)
    return mixed_trace(objects, queries, ops, UPDATE_FRACTION, seed=59)


def make_router(n_shards: int) -> ShardRouter:
    return ShardRouter(
        n_shards, node_size=NODE_SIZE, io_latency=IO_LATENCY
    )


def preload(router: ShardRouter, n_objects: int) -> None:
    objects = default_network_workload(
        n_objects, moving_distance=0.02, seed=47
    )
    for oid, rect in objects.initial():
        router.upsert(oid, rect)


def route_op(router: ShardRouter) -> Any:
    """The open-loop executor: apply one trace operation to the router."""

    def execute(op: Any) -> None:
        if isinstance(op, UpdateOp):
            router.upsert(op.oid, op.new_rect)
        else:
            router.query(op.window)

    return execute


def run_shard_count(
    n_shards: int, n_objects: int, trace: List[Any]
) -> Dict[str, Any]:
    """Saturation probe, then an open-loop run at ~70% of saturation."""
    with make_router(n_shards) as router:
        preload(router, n_objects)
        harness = OpenLoopHarness(
            lambda k: route_op(router), n_clients=N_CLIENTS
        )
        saturation = harness.run(trace, rate=float("inf"))
        open_rate = max(1.0, 0.7 * saturation.achieved_rate)
        open_loop = harness.run(trace, rate=open_rate)
        migrations = router.stats()["tallies"]["migrations"]
    return {
        "saturation_ops_per_sec": saturation.achieved_rate,
        "open_loop": {
            "offered_rate": open_rate,
            "achieved_rate": open_loop.achieved_rate,
            **open_loop.report(),
        },
        "migrations": migrations,
    }


def to_metrics(shards: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """The bench_compare-compatible view: everything as ops/sec."""
    metrics: Dict[str, Any] = {}
    for count, row in shards.items():
        name = f"serve.{count}shards"
        metrics[f"{name}.saturation"] = {
            "ops_per_sec": row["saturation_ops_per_sec"],
            "iterations": 1,
        }
        for p in ("p50_ms", "p95_ms", "p99_ms"):
            value = row["open_loop"][p]
            if value > 0:
                metrics[f"{name}.inv_{p[:-3]}"] = {
                    "ops_per_sec": 1000.0 / value,
                    "iterations": 1,
                }
    return metrics


def main(argv: List[str]) -> int:
    output = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_OUTPUT
    scale = bench_scale()
    n_objects = scaled(4000)
    ops = scaled(1200)
    trace = build_workload(n_objects, ops)
    queries = sum(1 for op in trace if isinstance(op, QueryOp))
    print(
        f"workload: {n_objects} objects, {len(trace)} ops "
        f"({queries} queries), {N_CLIENTS} clients, "
        f"io_latency={IO_LATENCY * 1000:.2f} ms/leaf"
    )

    shards: Dict[str, Dict[str, Any]] = {}
    for n_shards in SHARD_COUNTS:
        row = run_shard_count(n_shards, n_objects, trace)
        shards[str(n_shards)] = row
        ol = row["open_loop"]
        print(
            f"  {n_shards} shard(s): saturation "
            f"{row['saturation_ops_per_sec']:8.1f} ops/s | open-loop "
            f"p50 {ol['p50_ms']:7.2f} ms  p95 {ol['p95_ms']:7.2f} ms  "
            f"p99 {ol['p99_ms']:7.2f} ms | {row['migrations']} migrations"
        )

    speedup = (
        shards["4"]["saturation_ops_per_sec"]
        / shards["1"]["saturation_ops_per_sec"]
    )
    print(f"speedup 4 shards vs 1: {speedup:.2f}x")

    report = {
        "schema": SCHEMA,
        "scale": scale,
        "io_latency": IO_LATENCY,
        "n_clients": N_CLIENTS,
        "operations": len(trace),
        "update_fraction": UPDATE_FRACTION,
        "shards": shards,
        "speedup_4_vs_1": speedup,
        "metrics": to_metrics(shards),
    }
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
