"""Buffer-size ablation: how a resident leaf cache changes the picture.

The paper's cost model charges every leaf access to disk.  A real buffer
manager caches leaves too; this bench quantifies the boundary of the
RUM-tree's advantage: it wins whenever the leaf working set exceeds the
buffer (the paper's regime), while a cache that holds most of the leaf
level absorbs the R*-tree's read-dominated search overhead and flips the
comparison.
"""

from conftest import archive, run_experiment

from repro.experiments import series_table
from repro.experiments.ablation_buffer import run_buffer_ablation


def test_buffer_size_ablation(benchmark):
    result = run_experiment(benchmark, run_buffer_ablation)
    archive(
        "ablation_buffer",
        [
            "Per-update I/O vs resident leaf-cache pages",
            series_table(result, "cache_pages", "tree", "update_io"),
        ],
    )
    series = {}
    for row in result.rows:
        series.setdefault(row["tree"], {})[row["cache_pages"]] = row[
            "update_io"
        ]
    rum = series["RUM-tree(touch)"]
    rstar = series["R*-tree"]
    caches = sorted(rum)

    # Caching monotonically (weakly) reduces everyone's cost.
    for tree in (rum, rstar):
        for small, large in zip(caches, caches[1:]):
            assert tree[large] <= tree[small] + 0.1
    # Without a leaf cache (the paper's model) the RUM-tree wins ...
    assert rum[0] < rstar[0]
    # ... and the R*-tree profits more from caching than the RUM-tree:
    # its overhead is reads, which are what a cache absorbs.
    assert rstar[0] - rstar[caches[-1]] > rum[0] - rum[caches[-1]]
