#!/usr/bin/env python
"""Tracked micro-benchmarks for the simulator's hot paths.

Unlike the ``bench_fig*`` experiment replays, these measure the raw
throughput of the layers every experiment sits on: the page codec, the
buffer pool, the update memo, and one small end-to-end update/query run.
Run it directly::

    PYTHONPATH=src python benchmarks/bench_micro.py [output.json]

It prints one line per metric and writes ``BENCH_micro.json`` at the repo
root (or to the path given as the first argument) with the schema::

    {
      "schema": "bench_micro/v1",
      "scale": <REPRO_BENCH_SCALE in effect>,
      "node_size": 8192,
      "metrics": {
        "<name>": {"ops_per_sec": <float>, "iterations": <int>},
        ...
      }
    }

Metric names are stable identifiers; ``scripts/bench_compare.py`` diffs
two such files and flags regressions.  Iteration counts scale with
``REPRO_BENCH_SCALE`` so the CI smoke run stays fast.
"""

from __future__ import annotations

import gc
import json
import pathlib
import random
import sys
import tempfile
import time
from typing import Callable, Dict, Sequence

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro import kernels
from repro.core.memo import UpdateMemo
from repro.core.memo_lsm import SpillingUpdateMemo
from repro.concurrency.racecheck import RaceChecker
from repro.obs import Observability
from repro.experiments.harness import (
    bench_scale,
    load_tree,
    make_tree,
    measure_batched_updates,
    measure_queries,
    measure_updates,
    scaled,
)
from repro.rtree.base import MIRROR_QUERY_STREAK
from repro.rtree.geometry import Rect
from repro.rtree.node import IndexEntry, LeafEntry, Node
from repro.storage.buffer import BufferPool
from repro.storage.codec import NodeCodec
from repro.storage.disk import DiskManager
from repro.storage.iostats import IOStats
from repro.workload.objects import default_network_workload
from repro.workload.queries import RangeQueryGenerator

SCHEMA = "bench_micro/v1"
NODE_SIZE = 8192
DEFAULT_OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_micro.json"

#: Batch sizes swept by the batched-ingestion end-to-end metric; the
#: headline ``end_to_end.update_batch`` is the HEADLINE_BATCH_SIZE run
#: (the others get a size-suffixed metric name).
BATCH_SIZES = (16, 64, 256)
HEADLINE_BATCH_SIZE = 64


def _timed(fn: Callable[[], None], iterations: int) -> float:
    """Run ``fn`` ``iterations`` times; ops/sec of one ``fn`` call."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        fn()
    elapsed = time.perf_counter() - t0
    return iterations / elapsed if elapsed > 0 else float("inf")


def _random_rect(rng: random.Random) -> Rect:
    x1, x2 = sorted((rng.random(), rng.random()))
    y1, y2 = sorted((rng.random(), rng.random()))
    return Rect(x1, y1, x2, y2)


def _full_leaf(codec: NodeCodec, rng: random.Random) -> Node:
    entries = [
        LeafEntry(_random_rect(rng), oid=i, stamp=3 * i)
        for i in range(codec.leaf_cap)
    ]
    return Node(1, True, entries, prev_leaf=7, next_leaf=9)


def _full_index(codec: NodeCodec, rng: random.Random) -> Node:
    entries = [
        IndexEntry(_random_rect(rng), child_id=i + 1)
        for i in range(codec.index_cap)
    ]
    return Node(2, False, entries)


def bench_codec(metrics: Dict, iters: int) -> None:
    rng = random.Random(7)
    for label, rum_leaves, maker in (
        ("classic_leaf", False, _full_leaf),
        ("rum_leaf", True, _full_leaf),
        ("index", False, _full_index),
    ):
        codec = NodeCodec(NODE_SIZE, rum_leaves=rum_leaves)
        node = maker(codec, rng)
        page = codec.encode(node)

        def encode() -> None:
            node.cached_bytes = None  # defeat the clean-page cache
            codec.encode(node)

        def decode() -> None:
            codec.decode(1, page, lazy=False)

        metrics[f"codec.encode_{label}"] = {
            "ops_per_sec": _timed(encode, iters), "iterations": iters,
        }
        metrics[f"codec.decode_{label}"] = {
            "ops_per_sec": _timed(decode, iters), "iterations": iters,
        }
    codec = NodeCodec(NODE_SIZE, rum_leaves=True)
    page = codec.encode(_full_leaf(codec, rng))
    lazy_iters = iters * 10

    def decode_lazy() -> None:
        codec.decode(1, page, lazy=True)

    metrics["codec.decode_lazy_header"] = {
        "ops_per_sec": _timed(decode_lazy, lazy_iters),
        "iterations": lazy_iters,
    }
    count = codec.leaf_cap

    def decode_bulk() -> None:
        codec.decode_block(count, page)

    metrics["codec.decode_bulk"] = {
        "ops_per_sec": _timed(decode_bulk, lazy_iters),
        "iterations": lazy_iters,
    }


def bench_kernels(metrics: Dict, iters: int) -> None:
    """Columnar kernel hot loops in isolation (see docs/KERNELS.md).

    ``geometry.bulk_intersect`` runs the range-search predicate over a
    buffer-born block (the zero-copy representation queries consume);
    ``split.margin_scan`` runs the R* axis-choice scan — a stable argsort
    plus running-bounds tables per coordinate column — over an entry-born
    block of a full leaf, the exact shape the split path feeds it.
    """
    rng = random.Random(13)
    codec = NodeCodec(NODE_SIZE, rum_leaves=True)
    node = _full_leaf(codec, rng)
    page = codec.encode(node)
    count = len(node.entries)
    block = codec.decode_block(count, page)
    wrng = random.Random(17)
    windows = []
    for _ in range(64):
        x, y = wrng.random() * 0.99, wrng.random() * 0.99
        windows.append((x, y, x + 0.01, y + 0.01))

    def bulk_intersect() -> None:
        for wx1, wy1, wx2, wy2 in windows:
            kernels.intersect_indices(block, wx1, wy1, wx2, wy2)

    rounds = max(5, iters // 10)
    metrics["geometry.bulk_intersect"] = {
        "ops_per_sec": _timed(bulk_intersect, rounds) * len(windows),
        "iterations": rounds * len(windows),
    }

    entry_block = kernels.block_from_entries(node.entries)
    min_entries = max(2, count * 2 // 5)

    def margin_scan() -> None:
        for dim in range(4):
            order = kernels.argsort(entry_block, dim)
            kernels.split_tables(entry_block, order, min_entries)

    metrics["split.margin_scan"] = {
        "ops_per_sec": _timed(margin_scan, rounds) * 4,
        "iterations": rounds * 4,
    }


def bench_buffer(metrics: Dict, iters: int) -> None:
    rng = random.Random(11)
    codec = NodeCodec(2048, rum_leaves=True)
    disk = DiskManager(2048)
    buf = BufferPool(disk, codec, IOStats())
    page_ids = []
    for _ in range(32):
        node = buf.new_node(is_leaf=True)
        node.entries.extend(
            LeafEntry(_random_rect(rng), oid=i, stamp=i)
            for i in range(codec.leaf_cap // 2)
        )
        buf.mark_dirty(node)
        page_ids.append(node.page_id)

    def get_pages() -> None:
        with buf.operation():
            for pid in page_ids:
                _ = buf.get_node(pid).entries  # materialise lazy leaves

    def get_dirty_flush() -> None:
        with buf.operation():
            for pid in page_ids:
                buf.mark_dirty(buf.get_node(pid))

    n_pages = len(page_ids)
    metrics["buffer.get_node"] = {
        "ops_per_sec": _timed(get_pages, iters) * n_pages,
        "iterations": iters * n_pages,
    }
    metrics["buffer.get_dirty_flush"] = {
        "ops_per_sec": _timed(get_dirty_flush, iters) * n_pages,
        "iterations": iters * n_pages,
    }


def bench_memo(metrics: Dict, iters: int) -> None:
    memo = UpdateMemo(n_buckets=64)
    n_oids = 512
    stamp = 0

    def memo_cycle() -> None:
        # One record + one query + one clean per oid: the per-update
        # pattern of the RUM-tree hot path.
        nonlocal stamp
        for oid in range(n_oids):
            stamp += 1
            memo.record_update(oid, stamp)
            memo.check_status(oid, stamp)
            if memo.is_obsolete(oid, stamp - 1):
                memo.note_cleaned(oid)

    rounds = max(1, iters // 50)
    metrics["memo.update_check_clean"] = {
        "ops_per_sec": _timed(memo_cycle, rounds) * n_oids,
        "iterations": rounds * n_oids,
    }

    # latest_stamp against the LSM-tiered memo with the RAM tier pinned
    # far below the population, so nearly every probe walks the Bloom
    # filters and sorted runs — the CheckStatus cost a spilled memo
    # adds to query filtering and cleaning.
    from repro.storage.wal import UM_ENTRY_BYTES

    with tempfile.TemporaryDirectory(prefix="bench-memo-") as tmp:
        spilled = SpillingUpdateMemo(
            tmp,
            spill_budget=32 * UM_ENTRY_BYTES,
            compact_threshold=4,
        )
        for oid in range(n_oids):
            spilled.record_update(oid, oid + 1)

        def probe_spilled() -> None:
            for oid in range(n_oids):
                spilled.latest_stamp(oid)

        metrics["memo.probe_spilled"] = {
            "ops_per_sec": _timed(probe_spilled, rounds) * n_oids,
            "iterations": rounds * n_oids,
        }
        spilled.close()


def bench_end_to_end(metrics: Dict, suffix: str = "", obs=None) -> None:
    n = scaled(2000)
    workload = default_network_workload(n, moving_distance=0.01, seed=11)
    tree = make_tree("rum_touch", node_size=2048, obs=obs)
    load_tree(tree, workload.initial())
    updates = measure_updates(tree, workload, n)
    metrics[f"end_to_end.update{suffix}"] = {
        "ops_per_sec": (
            updates.updates / updates.cpu_seconds
            if updates.cpu_seconds > 0 else float("inf")
        ),
        "iterations": updates.updates,
    }
    # Unmeasured warm-up on a *different* query seed: a sustained query
    # phase amortises away its one-time costs — per-entry-count struct
    # kernels compiled on first decode, and the query mirror built after
    # MIRROR_QUERY_STREAK mutation-free searches — so the measured stream
    # reports the steady-state per-query cost rather than charging those
    # setup costs to whichever few queries happen to run first.
    for window in RangeQueryGenerator(seed=7).queries(
        MIRROR_QUERY_STREAK + 8
    ):
        tree.search(window)
    n_queries = scaled(2000)
    queries = measure_queries(
        tree, RangeQueryGenerator(seed=2), n_queries
    )
    metrics[f"end_to_end.query{suffix}"] = {
        "ops_per_sec": (
            queries.queries / queries.cpu_seconds
            if queries.cpu_seconds > 0 else float("inf")
        ),
        "iterations": queries.queries,
    }


#: Updates/queries per timed slice of the interleaved obs A/B.
AB_CHUNK = 100

#: Independent passes of the paired A/B; per-leg times take the minimum
#: across passes, which discards passes hit by host-steal episodes.
AB_PASSES = 3

#: The observability A/B legs: metric-name suffix -> Observability
#: factory for the tree under that leg.
AB_LEGS = (
    ("", lambda: None),
    ("_obs_off", Observability.disabled),
    ("_obs_metrics", lambda: Observability(level="metrics")),
)


def _ab_pass(
    factories: Sequence[Callable[[], object]],
    n: int,
    n_queries: int,
    build_rot: int = 0,
) -> tuple:
    """One full paired pass: fresh trees, chunk-interleaved update then
    query phases.  Returns per-leg ``(update_times, query_times)``.

    ``factories`` build one tree per leg (the legs differ only in what
    is attached to the tree); each gets its own copy of the same
    deterministic workload.  ``build_rot`` rotates the order the legs'
    trees are *built* in.  Build order shapes heap layout (later trees
    land in a larger, more fragmented heap and see slightly worse
    locality), which shows up as a systematic ~2-4% bias against
    later-built legs that execution-order rotation cannot cancel.
    Rotating build position across passes gives every leg one pass in
    each position, and the per-leg min over passes compares the legs at
    their common best layout.
    """
    n_legs = len(factories)
    trees: list = [None] * n_legs
    streams: list = [None] * n_legs
    for j in range(n_legs):
        i = (build_rot + j) % n_legs
        workload = default_network_workload(n, moving_distance=0.01, seed=11)
        tree = factories[i]()
        load_tree(tree, workload.initial())
        trees[i] = tree
        streams[i] = iter(workload.updates(n))

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        utimes = [0.0] * n_legs
        done = 0
        rnd = 0
        while done < n:
            take = min(AB_CHUNK, n - done)
            gc.collect()
            # Rotate which leg runs first: the leg right after the
            # collection sees colder caches, and that penalty must not
            # always land on the same side of the ratios.
            for k in range(n_legs):
                i = (rnd + k) % n_legs
                stream = streams[i]
                update = trees[i].update_object
                t0 = time.process_time()
                for _ in range(take):
                    oid, _old, new = next(stream)
                    update(oid, _old, new)
                utimes[i] += time.process_time() - t0
            done += take
            rnd += 1

        # Same unmeasured warm-up rationale as bench_end_to_end; it also
        # lets the metrics leg's adaptive query sampling reach its steady
        # stride, so the measured slices reflect sampled steady state.
        for tree in trees:
            for window in RangeQueryGenerator(seed=7).queries(
                MIRROR_QUERY_STREAK + 8
            ):
                tree.search(window)
        qstreams = [
            iter(RangeQueryGenerator(seed=2).queries(n_queries))
            for _ in trees
        ]
        qtimes = [0.0] * n_legs
        done = 0
        rnd = 0
        while done < n_queries:
            take = min(AB_CHUNK, n_queries - done)
            gc.collect()
            for k in range(n_legs):
                i = (rnd + k) % n_legs
                qstream = qstreams[i]
                search = trees[i].search
                t0 = time.process_time()
                for _ in range(take):
                    search(next(qstream))
                qtimes[i] += time.process_time() - t0
            done += take
            rnd += 1
        return utimes, qtimes
    finally:
        if gc_was_enabled:
            gc.enable()


def bench_obs_ab(metrics: Dict) -> None:
    """Paired end-to-end A/B of the observability levels.

    Single-leg repeats on this workload disperse by ±5-10% (allocator
    growth, interpreter warm-up, host jitter), which drowns the <2%
    metrics-level budget.  Two counter-measures:

    * **Chunk interleaving** — instead of timing whole legs back to
      back, one tree per leg advances through the *same* deterministic
      update/query stream in alternating ``AB_CHUNK``-op slices, each
      leg accumulating its own summed timer.  Slow drift of the host
      then hits every leg's slices roughly equally and cancels out of
      the ratios.  The cyclic GC is disabled inside timed slices (its
      pauses would land on whichever leg happened to allocate past the
      threshold) and runs at slice boundaries instead, off the clock.
    * **Min-of-passes with rotated build order** — the whole paired
      pass repeats ``AB_PASSES`` times on fresh trees, each pass
      building the legs' trees in a rotated order (see
      :func:`_ab_pass`), and each leg keeps its *minimum* total.
      Host-steal episodes span many consecutive slices, so a stolen
      pass inflates one leg's sum more than another's; the minimum
      discards those passes, cancels the build-position bias, and
      converges on the undisturbed cost.
    """
    factories = [
        (lambda make=make_obs: make_tree("rum_touch", node_size=2048, obs=make()))
        for _, make_obs in AB_LEGS
    ]
    _ab_run([suffix for suffix, _ in AB_LEGS], factories, metrics)


def _ab_run(
    suffixes: Sequence[str],
    factories: Sequence[Callable[[], object]],
    metrics: Dict,
) -> None:
    """Min-of-passes paired A/B over ``factories``; records each leg's
    update/query throughput under ``end_to_end.update{suffix}`` /
    ``end_to_end.query{suffix}``."""
    n = scaled(2000)
    n_queries = scaled(2000)
    n_legs = len(factories)
    best_u = [float("inf")] * n_legs
    best_q = [float("inf")] * n_legs
    for p in range(AB_PASSES):
        utimes, qtimes = _ab_pass(factories, n, n_queries, build_rot=p % n_legs)
        for i in range(n_legs):
            best_u[i] = min(best_u[i], utimes[i])
            best_q[i] = min(best_q[i], qtimes[i])
    for suffix, t in zip(suffixes, best_u):
        metrics[f"end_to_end.update{suffix}"] = {
            "ops_per_sec": n / t if t > 0 else float("inf"),
            "iterations": n,
        }
    for suffix, t in zip(suffixes, best_q):
        metrics[f"end_to_end.query{suffix}"] = {
            "ops_per_sec": n_queries / t if t > 0 else float("inf"),
            "iterations": n_queries,
        }


def _racecheck_attach_detach(tree) -> None:
    """Attach the race detector, then detach it again.

    The resulting tree is *supposed* to be indistinguishable from one
    that never saw a checker — every probe is an attribute load plus a
    ``None`` check.  Benchmarking this leg against the plain one pins
    that contract: if a future change makes detach leave a stub object
    behind (turning the probes into real dispatches), the measured
    "detector off" overhead stops reading ~0% and the A/B exposes it.
    """
    tree.attach_racecheck(RaceChecker())
    tree.attach_racecheck(None)


def bench_racecheck_ab(metrics: Dict) -> None:
    """Paired end-to-end A/B of the Eraser race detector.

    Same chunk-interleaved, min-of-passes machinery as
    :func:`bench_obs_ab`, with three legs:

    * ``""`` — plain tree, never attached (the shipped default);
    * ``"_racecheck_off"`` — attached then detached (must match the
      plain leg, see :func:`_racecheck_attach_detach`);
    * ``"_racecheck"`` — a live :class:`RaceChecker` cascaded across
      the tree, buffer pool, memo and stamp counter.

    The run is single-threaded, so the active leg measures the per-probe
    bookkeeping cost (lockset/epoch updates under the checker's mutex),
    not contention; the threaded suites exercise the detection side.
    The checker is attached directly rather than via global activation
    so the other legs' trees keep plain (untracked) locks.
    """

    def plain():
        return make_tree("rum_touch", node_size=2048)

    def attach_detach():
        tree = make_tree("rum_touch", node_size=2048)
        _racecheck_attach_detach(tree)
        return tree

    def active():
        tree = make_tree("rum_touch", node_size=2048)
        tree.attach_racecheck(RaceChecker())
        return tree

    _ab_run(
        ("", "_racecheck_off", "_racecheck"),
        (plain, attach_detach, active),
        metrics,
    )


def bench_batch(metrics: Dict, obs=None) -> None:
    """Batched ingestion: the ``end_to_end.update`` stream, but applied
    through ``RUMTree.apply_batch`` in fixed-size groups.

    Same workload, seed, tree variant and node size as
    :func:`bench_end_to_end`, so ``end_to_end.update_batch`` divided by
    ``end_to_end.update`` is exactly the speedup of the batched pipeline
    (dedup + Z-order + batch scope + amortised cleaning) over per-call
    application.
    """
    n = scaled(2000)
    for size in BATCH_SIZES:
        workload = default_network_workload(n, moving_distance=0.01, seed=11)
        tree = make_tree("rum_touch", node_size=2048, obs=obs)
        load_tree(tree, workload.initial())
        m = measure_batched_updates(tree, workload, n, batch_size=size)
        name = (
            "end_to_end.update_batch"
            if size == HEADLINE_BATCH_SIZE
            else f"end_to_end.update_batch{size}"
        )
        metrics[name] = {
            "ops_per_sec": (
                m.updates / m.cpu_seconds
                if m.cpu_seconds > 0 else float("inf")
            ),
            "iterations": m.updates,
        }


def obs_overhead_pct(metrics: Dict, suffix: str = "_obs_off") -> Dict[str, float]:
    """Relative slowdown of an obs-attached leg vs the plain leg, per op.

    Both legs execute the exact same workload, chunk-interleaved in the
    same process (see :func:`bench_obs_ab`); the only difference is the
    :class:`Observability` attached to the tree.  ``_obs_off`` (level
    ``off``) isolates the disabled instrumentation path — one attribute
    load + ``None`` check per guarded site, bar ~0%.  ``_obs_metrics``
    (level ``metrics``) additionally pays the bound counters,
    histograms, the flight-recorder capture, and the drift EWMA feed,
    bar <2%.
    """
    overhead = {}
    for op in ("update", "query"):
        base = metrics[f"end_to_end.{op}"]["ops_per_sec"]
        on = metrics[f"end_to_end.{op}{suffix}"]["ops_per_sec"]
        overhead[op] = (base / on - 1.0) * 100.0 if on > 0 else 0.0
    return overhead


def run(output: pathlib.Path = DEFAULT_OUTPUT) -> Dict:
    scale = bench_scale()
    iters = max(50, int(2000 * scale))
    metrics: Dict = {}
    bench_codec(metrics, iters)
    bench_kernels(metrics, iters)
    bench_buffer(metrics, max(10, iters // 10))
    bench_memo(metrics, iters)
    # End-to-end update/query plus the three-way observability A/B, all
    # from one chunk-interleaved paired run (see bench_obs_ab).
    e2e: Dict = {}
    bench_obs_ab(e2e)
    # Batched ingestion keeps a best-of-two scheme (plain obs only: the
    # obs A/B is owned by bench_obs_ab above).
    for _ in range(2):
        fresh: Dict = {}
        bench_batch(fresh)
        for name, m in fresh.items():
            if (
                name not in e2e
                or m["ops_per_sec"] > e2e[name]["ops_per_sec"]
            ):
                e2e[name] = m
    metrics.update(e2e)
    overhead_off = obs_overhead_pct(e2e, "_obs_off")
    overhead_metrics = obs_overhead_pct(e2e, "_obs_metrics")
    # Race-detector A/B: its own paired run with its own plain leg as
    # the baseline (the overheads must come from the same interleaved
    # process run), but only the suffixed legs are published — the
    # headline end_to_end.update/query stay owned by bench_obs_ab.
    rc: Dict = {}
    bench_racecheck_ab(rc)
    racecheck_off = obs_overhead_pct(rc, "_racecheck_off")
    racecheck_on = obs_overhead_pct(rc, "_racecheck")
    for name, m in rc.items():
        if name not in ("end_to_end.update", "end_to_end.query"):
            metrics[name] = m
    report = {
        "schema": SCHEMA,
        "scale": scale,
        "node_size": NODE_SIZE,
        "metrics": metrics,
        "obs_disabled_overhead_pct": overhead_off,
        "obs_metrics_overhead_pct": overhead_metrics,
        "racecheck_disabled_overhead_pct": racecheck_off,
        "racecheck_on_overhead_pct": racecheck_on,
    }
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for name in sorted(metrics):
        print(f"{name:32s} {metrics[name]['ops_per_sec']:12.1f} ops/s")
    for op, pct in sorted(overhead_off.items()):
        print(f"obs disabled overhead ({op}): {pct:+.2f}%")
    for op, pct in sorted(overhead_metrics.items()):
        print(f"obs metrics overhead ({op}): {pct:+.2f}%")
    for op, pct in sorted(racecheck_off.items()):
        print(f"racecheck detached overhead ({op}): {pct:+.2f}%")
    for op, pct in sorted(racecheck_on.items()):
        print(f"racecheck active overhead ({op}): {pct:+.2f}%")
    print(f"wrote {output}")
    return report


if __name__ == "__main__":
    run(pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_OUTPUT)
