"""Shared helpers for the reproduction benchmarks.

Every bench runs one experiment driver from :mod:`repro.experiments` under
pytest-benchmark (one round — these are end-to-end experiment replays, not
micro-benchmarks), prints the paper-style table(s), archives them under
``benchmarks/results/``, and asserts the qualitative *shape* the paper
reports (who wins, monotonicity, crossovers).

Workload sizes scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0); see DESIGN.md for the scale substitution rationale.
"""

from __future__ import annotations

import pathlib
from typing import Callable, List

import pytest

from repro.experiments import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_experiment(
    benchmark, driver: Callable[[], ExperimentResult]
) -> ExperimentResult:
    """Execute one experiment driver exactly once under the benchmark."""
    return benchmark.pedantic(driver, rounds=1, iterations=1)


def archive(name: str, sections: List[str]) -> None:
    """Print the report and persist it under benchmarks/results/."""
    text = "\n\n".join(sections) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def by_tree(result: ExperimentResult, tree: str, key: str) -> List[float]:
    """One tree's series for a metric, in row order."""
    return [row[key] for row in result.rows if row["tree"] == tree]


def averages_by_tree(result: ExperimentResult, key: str) -> dict:
    sums: dict = {}
    for row in result.rows:
        sums.setdefault(row["tree"], []).append(row[key])
    return {tree: sum(v) / len(v) for tree, v in sums.items()}


@pytest.fixture(scope="session", autouse=True)
def _results_dir() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
