#!/usr/bin/env python
"""Batch-size sweep for the batched update ingestion pipeline.

For each batch size the same seeded update stream is applied to a fresh
RUM-tree through :meth:`RUMTree.apply_batch`, and the sweep reports how
throughput, leaf I/O, writeback coalescing, and (with recovery Option
III) WAL log writes respond to the batch size.  Batch size 1 is the
degenerate case — one operation per batch — so every other row divided
by it is the pure batching speedup on identical work.  Run it directly::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py [out.json]

It prints one row per (mode, batch size) and writes ``BENCH_batch.json``
at the repo root (or to the given path) with the schema::

    {
      "schema": "bench_batch/v1",
      "scale": <REPRO_BENCH_SCALE in effect>,
      "node_size": 2048,
      "updates": <updates applied per configuration>,
      "rows": [
        {"mode": "plain" | "wal_iii", "batch_size": <int>,
         "ops_per_sec": <float>, "leaf_io_per_update": <float>,
         "write_marks": <int>, "pages_written": <int>,
         "coalesced_writes": <int>, "dedup_ratio": <float>,
         "log_writes_per_update": <float | null>},
        ...
      ]
    }

Workload sizes scale with ``REPRO_BENCH_SCALE`` like every other
benchmark; all randomness is seeded so reruns sweep identical streams.
See ``docs/BATCHING.md`` for how to read the sweep when picking a batch
size.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from typing import Dict, List, Optional

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.experiments.harness import bench_scale, load_tree, scaled
from repro.factory import build_rum_tree
from repro.workload.objects import default_network_workload

SCHEMA = "bench_batch/v1"
NODE_SIZE = 2048
WORKLOAD_SEED = 13
DEFAULT_OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_batch.json"

#: Swept batch sizes; 1 is the sequential-equivalent baseline row.
BATCH_SIZES = (1, 4, 16, 64, 256, 1024)


def _make_tree(mode: str):
    recovery = "III" if mode == "wal_iii" else None
    return build_rum_tree(
        node_size=NODE_SIZE,
        inspection_ratio=0.2,
        clean_upon_touch=True,
        recovery_option=recovery,
        checkpoint_interval=10_000,
    )


def sweep_one(mode: str, batch_size: int, n_updates: int) -> Dict:
    """Apply the seeded update stream in ``batch_size`` groups; one row."""
    workload = default_network_workload(
        scaled(2000), moving_distance=0.01, seed=WORKLOAD_SEED
    )
    tree = _make_tree(mode)
    load_tree(tree, workload.initial())
    log_before = tree.stats.log_writes if tree.wal is not None else 0

    before = tree.stats.snapshot()
    write_marks = pages_written = deduped = total_ops = 0
    started = time.process_time()
    batch: List = []
    for oid, old_rect, new_rect in workload.updates(n_updates):
        batch.append(("update", oid, new_rect, old_rect))
        if len(batch) >= batch_size:
            result = tree.apply_batch(batch)
            write_marks += result.write_marks
            pages_written += result.pages_written
            deduped += result.deduped
            total_ops += result.total_ops
            batch = []
    if batch:
        result = tree.apply_batch(batch)
        write_marks += result.write_marks
        pages_written += result.pages_written
        deduped += result.deduped
        total_ops += result.total_ops
    cpu = time.process_time() - started
    io = tree.stats.snapshot() - before

    log_per_update: Optional[float] = None
    if tree.wal is not None:
        log_per_update = (tree.stats.log_writes - log_before) / n_updates
    return {
        "mode": mode,
        "batch_size": batch_size,
        "ops_per_sec": n_updates / cpu if cpu > 0 else float("inf"),
        "leaf_io_per_update": io.leaf_total / n_updates,
        "write_marks": write_marks,
        "pages_written": pages_written,
        "coalesced_writes": max(0, write_marks - pages_written),
        "dedup_ratio": deduped / total_ops if total_ops else 0.0,
        "log_writes_per_update": log_per_update,
    }


def run(output: pathlib.Path = DEFAULT_OUTPUT) -> Dict:
    scale = bench_scale()
    n_updates = scaled(4000)
    rows = [
        sweep_one(mode, size, n_updates)
        for mode in ("plain", "wal_iii")
        for size in BATCH_SIZES
    ]
    report = {
        "schema": SCHEMA,
        "scale": scale,
        "node_size": NODE_SIZE,
        "updates": n_updates,
        "rows": rows,
    }
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    header = (
        f"{'mode':8s} {'batch':>6s} {'ops/s':>10s} {'leafIO/up':>10s} "
        f"{'coalesced':>10s} {'dedup':>6s} {'logW/up':>9s}"
    )
    print(header)
    for row in rows:
        logw = row["log_writes_per_update"]
        print(
            f"{row['mode']:8s} {row['batch_size']:6d} "
            f"{row['ops_per_sec']:10.1f} {row['leaf_io_per_update']:10.3f} "
            f"{row['coalesced_writes']:10d} {row['dedup_ratio']:6.3f} "
            f"{logw if logw is not None else float('nan'):9.3f}"
        )
    print(f"wrote {output}")
    return report


if __name__ == "__main__":
    run(pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_OUTPUT)
