"""Figure 12 — R*-tree vs FUR-tree vs RUM-tree over the moving distance.

Regenerates all four panels and asserts the paper's qualitative findings:

* (a) the R*-tree has the highest update cost at every distance; the
  FUR-tree's update cost grows with the distance; the RUM-tree's stays flat
  and lowest;
* (b) the RUM-tree's search cost is within a modest factor of the
  R*-tree's (smaller leaf fanout);
* (c) the RUM-tree's advantage in overall cost grows with the
  update:query ratio and it wins at update-heavy ratios;
* (d) the Update Memo is much smaller than the FUR-tree's secondary index.
"""

from conftest import archive, by_tree, run_experiment

from repro.experiments import run_fig12, run_fig12_overall, series_table


def test_fig12_moving_distance(benchmark):
    result = run_experiment(benchmark, run_fig12)
    archive(
        "fig12_moving_distance",
        [
            "Figure 12(a) — average update I/O vs moving distance",
            series_table(result, "moving_distance", "tree", "update_io"),
            "Figure 12(b) — average search I/O vs moving distance",
            series_table(result, "moving_distance", "tree", "search_io"),
            "Figure 12(d) — auxiliary structure size (bytes)",
            series_table(result, "moving_distance", "tree", "aux_bytes"),
        ],
    )

    rstar_update = by_tree(result, "R*-tree", "update_io")
    fur_update = by_tree(result, "FUR-tree", "update_io")
    rum_update = by_tree(result, "RUM-tree(touch)", "update_io")

    # (a) The RUM-tree has the cheapest updates everywhere; the R*-tree is
    # always costlier than the RUM-tree by a clear margin.
    for rum, rstar in zip(rum_update, rstar_update):
        assert rum < rstar
    assert sum(rum_update) / len(rum_update) < 0.6 * (
        sum(rstar_update) / len(rstar_update)
    )
    # (a) The FUR-tree degrades with the moving distance; the RUM-tree is
    # essentially flat (max/min below a small factor).
    assert fur_update[-1] > fur_update[0]
    assert max(rum_update) < 1.5 * min(rum_update)
    # (a) At large distances the RUM-tree beats the FUR-tree.
    assert rum_update[-1] < fur_update[-1]

    # (b) The RUM-tree's search overhead over the R*-tree stays bounded.
    rstar_search = by_tree(result, "R*-tree", "search_io")
    rum_search = by_tree(result, "RUM-tree(touch)", "search_io")
    avg_rstar = sum(rstar_search) / len(rstar_search)
    avg_rum = sum(rum_search) / len(rum_search)
    assert avg_rum < 2.0 * avg_rstar

    # (d) The memo is much smaller than the secondary index.
    fur_aux = by_tree(result, "FUR-tree", "aux_bytes")
    rum_aux = by_tree(result, "RUM-tree(touch)", "aux_bytes")
    for fur, rum in zip(fur_aux, rum_aux):
        assert rum < 0.25 * fur


def test_fig12_overall_ratio(benchmark):
    result = run_experiment(benchmark, run_fig12_overall)
    archive(
        "fig12_overall_ratio",
        [
            "Figure 12(c) — overall I/O per op vs update:query ratio",
            series_table(result, "ratio", "tree", "overall_io"),
        ],
    )
    # At the most update-heavy ratio the RUM-tree wins outright.
    last_ratio = result.rows[-1]["ratio"]
    final = {
        row["tree"]: row["overall_io"]
        for row in result.rows
        if row["ratio"] == last_ratio
    }
    assert final["RUM-tree(touch)"] < final["R*-tree"]
    assert final["RUM-tree(touch)"] < final["FUR-tree"]

    # The RUM/R* cost ratio improves monotonically-ish with update share:
    # strictly better at the update-heavy end than the query-heavy end.
    first_ratio = result.rows[0]["ratio"]
    first = {
        row["tree"]: row["overall_io"]
        for row in result.rows
        if row["ratio"] == first_ratio
    }
    gain_queries = first["RUM-tree(touch)"] / first["R*-tree"]
    gain_updates = final["RUM-tree(touch)"] / final["R*-tree"]
    assert gain_updates < gain_queries
