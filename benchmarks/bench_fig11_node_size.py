"""Figure 11 — effect of the node size (update I/O, update CPU, garbage).

Regenerates the three panels over node sizes 1024–8192 bytes and asserts
the paper's qualitative findings: larger nodes mildly reduce update I/O,
increase per-update CPU (more entries inspected per cleaning), and sharply
reduce the garbage ratio.
"""

from conftest import archive, by_tree, run_experiment

from repro.experiments import run_fig11, series_table


def test_fig11_node_size(benchmark):
    result = run_experiment(benchmark, run_fig11)
    archive(
        "fig11_node_size",
        [
            "Figure 11(a) — average update I/O vs node size",
            series_table(result, "node_size", "tree", "update_io"),
            "Figure 11(b) — average update CPU (ms) vs node size",
            series_table(result, "node_size", "tree", "update_cpu_ms"),
            "Figure 11(c) — garbage ratio vs node size",
            series_table(result, "node_size", "tree", "garbage_ratio"),
        ],
    )

    for tree in ("RUM-tree(token)", "RUM-tree(touch)"):
        io = by_tree(result, tree, "update_io")
        garbage = by_tree(result, tree, "garbage_ratio")
        # (a) larger nodes do not increase update I/O (fewer splits).
        assert io[-1] <= io[0] + 0.25
        # (c) the garbage ratio decreases with the node size.
        assert garbage[-1] <= garbage[0] + 1e-9

    # (c) quantitatively: the token variant's garbage ratio at 8192 B is
    # well below its 1024 B value.
    token_garbage = by_tree(result, "RUM-tree(token)", "garbage_ratio")
    assert token_garbage[-1] < 0.7 * token_garbage[0] + 1e-9
