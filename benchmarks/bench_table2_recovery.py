"""Table 2 — number of disk accesses to recover the Update Memo.

Asserts the paper's ordering: Option I (full scan with a spilling
intermediate table) is by far the most expensive; Option II (checkpoint +
leaf scan) is orders cheaper; Option III (checkpoint + log replay) is the
cheapest of all.
"""

from conftest import archive, run_experiment

from repro.experiments import format_table, run_table2


def test_table2_recovery_cost(benchmark):
    result = run_experiment(benchmark, run_table2)
    headers = [
        "option",
        "recovery_io",
        "leaf_reads",
        "log_reads",
        "spill_io",
        "memo_entries",
        "memo_superset",
    ]
    archive(
        "table2_recovery",
        [
            "Table 2 — number of I/Os for recovery",
            format_table(
                headers,
                [[row[h] for h in headers] for row in result.rows],
            ),
        ],
    )
    cost = {row["option"]: row["recovery_io"] for row in result.rows}
    assert cost["I"] > cost["II"] > cost["III"]
    # Option I is dominated by the spill of the per-object table.
    spill = {row["option"]: row["spill_io"] for row in result.rows}
    assert spill["I"] > cost["II"]
    # Option III reads no leaf pages at all.
    leaf_reads = {row["option"]: row["leaf_reads"] for row in result.rows}
    assert leaf_reads["III"] == 0

    # Options II/III recover a safe superset of the pre-crash memo (every
    # pre-crash entry survives with an up-to-date latest stamp).
    superset = {row["option"]: row["memo_superset"] for row in result.rows}
    assert superset["II"] and superset["III"]
