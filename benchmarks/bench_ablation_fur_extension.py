"""FUR-tree extension-band ablation (the Figure 12(b) trade-off).

The FUR-tree's leaf-MBR extension band trades update cost against search
cost: a wider band keeps more updates in place (3 I/Os) but bloats the
leaf MBRs, which range queries then pay for — the mechanism behind the
FUR-tree's search-cost degradation in Figure 12(b).
"""

from conftest import archive, run_experiment

from repro.experiments import format_table, run_fur_extension_ablation


def test_fur_extension_tradeoff(benchmark):
    result = run_experiment(benchmark, run_fur_extension_ablation)
    headers = ["extension", "update_io", "search_io", "in_place_pct"]
    archive(
        "ablation_fur_extension",
        [
            "FUR-tree update/search I/O vs leaf-MBR extension band",
            format_table(
                headers,
                [[row[h] for h in headers] for row in result.rows],
            ),
        ],
    )
    updates = [row["update_io"] for row in result.rows]
    searches = [row["search_io"] for row in result.rows]
    in_place = [row["in_place_pct"] for row in result.rows]

    # Wider band -> more in-place placements -> cheaper updates ...
    assert in_place[-1] >= in_place[0]
    assert updates[-1] <= updates[0]
    assert updates[-1] >= 3.0 - 1e-9  # the in-place floor of Section 4.2.2
    # ... paid for with degraded search.
    assert searches[-1] > searches[0]
