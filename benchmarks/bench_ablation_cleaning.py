"""Cleaning and structure-policy ablations (Section 3.3 design choices).

Token-count sweep at a fixed inspection ratio (the aggregate cleaning work
is constant, so update I/O and garbage ratio should be flat), and the
split/reinsertion policy study motivating the default R* machinery.
"""

from conftest import archive, run_experiment

from repro.experiments import (
    format_table,
    run_structure_ablation,
    run_token_ablation,
)


def test_token_count_ablation(benchmark):
    result = run_experiment(benchmark, run_token_ablation)
    headers = [
        "tokens",
        "update_io",
        "garbage_ratio",
        "leaves_inspected",
        "entries_removed",
    ]
    archive(
        "ablation_tokens",
        [
            "Token-count ablation (ir = 20%)",
            format_table(
                headers,
                [[row[h] for h in headers] for row in result.rows],
            ),
        ],
    )
    ios = [row["update_io"] for row in result.rows]
    inspected = [row["leaves_inspected"] for row in result.rows]
    # Same inspection ratio -> same aggregate cleaning work and cost.
    assert max(ios) < 1.2 * min(ios)
    assert max(inspected) < 1.1 * min(inspected) + 2


def test_structure_policy_ablation(benchmark):
    result = run_experiment(benchmark, run_structure_ablation)
    headers = ["config", "update_io", "search_io", "leaves", "height"]
    archive(
        "ablation_structure",
        [
            "Structure-policy ablation (RUM-tree)",
            format_table(
                headers,
                [[row[h] for h in headers] for row in result.rows],
            ),
        ],
    )
    rows = {row["config"]: row for row in result.rows}
    default = rows["rstar split + reinsert"]
    quadratic = rows["quadratic split, no reinsert"]
    # The default R* machinery does not lose to the plain-Guttman setup on
    # search quality (it is the reason the paper builds on the R*-tree).
    assert default["search_io"] <= quadratic["search_io"] * 1.25
