"""Figure 10 — effect of the inspection ratio (update I/O, garbage ratio).

Regenerates both panels for the RUM-tree(token) and RUM-tree(touch)
variants and asserts the paper's qualitative findings:

* update I/O increases with the inspection ratio for both variants and
  tracks ``2·(1+ir)``;
* the garbage ratio of the token variant drops steeply and is already
  near-optimal around ir = 20%;
* the touch variant achieves (much) lower garbage at similar update I/O.
"""

from conftest import archive, by_tree, run_experiment

from repro.experiments import run_fig10, series_table


def test_fig10_inspection_ratio(benchmark):
    result = run_experiment(benchmark, run_fig10)
    archive(
        "fig10_inspection_ratio",
        [
            "Figure 10(a) — average update I/O vs inspection ratio",
            series_table(result, "inspection_ratio", "tree", "update_io"),
            "Figure 10(b) — garbage ratio vs inspection ratio",
            series_table(result, "inspection_ratio", "tree", "garbage_ratio"),
            "Update-memo size (KB) vs inspection ratio",
            series_table(result, "inspection_ratio", "tree", "memo_kb"),
        ],
    )

    token_io = by_tree(result, "RUM-tree(token)", "update_io")
    touch_io = by_tree(result, "RUM-tree(touch)", "update_io")
    token_garbage = by_tree(result, "RUM-tree(token)", "garbage_ratio")
    touch_garbage = by_tree(result, "RUM-tree(touch)", "garbage_ratio")
    ratios = [
        row["inspection_ratio"]
        for row in result.rows
        if row["tree"] == "RUM-tree(token)"
    ]

    # (a) update I/O grows with ir for both variants.
    assert token_io[-1] > token_io[0]
    assert touch_io[-1] > touch_io[0]
    # ...and stays in the ballpark of the 2(1+ir) cost model.
    for ir, io in zip(ratios, token_io):
        assert io < 2.0 * (1.0 + ir) + 1.5

    # (b) the token variant's garbage ratio falls steeply with ir; by
    # ir=20% it is within striking distance of the high-ir plateau.
    idx20 = ratios.index(0.2)
    assert token_garbage[idx20] < 0.25 * token_garbage[0]
    assert token_garbage[-1] <= token_garbage[idx20]

    # The touch variant dominates the token variant on garbage.
    for touch, token in zip(touch_garbage, token_garbage):
        assert touch <= token + 1e-9
