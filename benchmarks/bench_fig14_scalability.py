"""Figure 14 — scalability with the number of indexed objects.

Regenerates all four panels and asserts the paper's qualitative findings:
the R*-tree's update cost grows with the population while the RUM-tree's
stays flat and lowest; search costs stay comparable; the memo size grows
(at most) linearly with the population.
"""

from conftest import archive, by_tree, run_experiment

from repro.experiments import run_fig14, run_fig14_overall, series_table

X = "num_objects_swept"


def test_fig14_scalability(benchmark):
    result = run_experiment(benchmark, run_fig14)
    archive(
        "fig14_scalability",
        [
            "Figure 14(a) — average update I/O vs number of objects",
            series_table(result, X, "tree", "update_io"),
            "Figure 14(b) — average search I/O vs number of objects",
            series_table(result, X, "tree", "search_io"),
            "Figure 14(d) — update-memo size (bytes) vs number of objects",
            series_table(result, X, "tree", "aux_bytes"),
        ],
    )

    rstar_update = by_tree(result, "R*-tree", "update_io")
    rum_update = by_tree(result, "RUM-tree(touch)", "update_io")

    # (a) The R*-tree update cost grows with the population; the RUM-tree's
    # does not (flat within a small factor) and is the cheapest throughout.
    assert rstar_update[-1] > rstar_update[0]
    assert max(rum_update) < 1.4 * min(rum_update)
    for rum, rstar in zip(rum_update, rstar_update):
        assert rum < rstar

    # (d) The memo grows at most linearly in the population: doubling the
    # objects may double the memo but not more (with slack for noise).
    rum_aux = by_tree(result, "RUM-tree(touch)", "aux_bytes")
    populations = [
        row[X] for row in result.rows if row["tree"] == "RUM-tree(touch)"
    ]
    for i in range(1, len(rum_aux)):
        growth = (rum_aux[i] + 1) / (rum_aux[0] + 1)
        scale = populations[i] / populations[0]
        assert growth <= 3.0 * scale


def test_fig14_overall_ratio(benchmark):
    result = run_experiment(benchmark, run_fig14_overall)
    archive(
        "fig14_overall_ratio",
        [
            "Figure 14(c) — overall I/O per op vs update:query ratio "
            "(largest population)",
            series_table(result, "ratio", "tree", "overall_io"),
        ],
    )
    last_ratio = result.rows[-1]["ratio"]
    final = {
        row["tree"]: row["overall_io"]
        for row in result.rows
        if row["ratio"] == last_ratio
    }
    assert final["RUM-tree(touch)"] < final["R*-tree"]
    assert final["RUM-tree(touch)"] < final["FUR-tree"]
