"""Figure 13 — R*-tree vs FUR-tree vs RUM-tree over the object extent.

Regenerates all four panels and asserts the paper's qualitative findings:
the R*-tree's update cost grows with the extent, the FUR-tree's falls, the
RUM-tree's is flat and cheapest; the memo stays far smaller than the
secondary index; at update-heavy ratios the RUM-tree wins overall.
"""

from conftest import archive, by_tree, run_experiment

from repro.experiments import run_fig13, run_fig13_overall, series_table


def test_fig13_object_extent(benchmark):
    result = run_experiment(benchmark, run_fig13)
    archive(
        "fig13_object_extent",
        [
            "Figure 13(a) — average update I/O vs object extent",
            series_table(result, "extent", "tree", "update_io"),
            "Figure 13(b) — average search I/O vs object extent",
            series_table(result, "extent", "tree", "search_io"),
            "Figure 13(d) — auxiliary structure size (bytes)",
            series_table(result, "extent", "tree", "aux_bytes"),
        ],
    )

    rstar_update = by_tree(result, "R*-tree", "update_io")
    fur_update = by_tree(result, "FUR-tree", "update_io")
    rum_update = by_tree(result, "RUM-tree(touch)", "update_io")

    # (a) The R*-tree's update cost grows with the extent (wider MBRs,
    # more deletion-search paths); the FUR-tree's does not grow; the
    # RUM-tree is flat, cheapest everywhere, and unaffected by the extent.
    assert rstar_update[-1] > rstar_update[0]
    assert fur_update[-1] <= fur_update[0] + 0.5
    for rum, rstar in zip(rum_update, rstar_update):
        assert rum < rstar
    assert max(rum_update) < 1.4 * min(rum_update)

    # (d) The memo stays far smaller than the secondary index.
    fur_aux = by_tree(result, "FUR-tree", "aux_bytes")
    rum_aux = by_tree(result, "RUM-tree(touch)", "aux_bytes")
    for fur, rum in zip(fur_aux, rum_aux):
        assert rum < 0.25 * fur


def test_fig13_overall_ratio(benchmark):
    result = run_experiment(benchmark, run_fig13_overall)
    archive(
        "fig13_overall_ratio",
        [
            "Figure 13(c) — overall I/O per op vs update:query ratio "
            "(extent 0.01)",
            series_table(result, "ratio", "tree", "overall_io"),
        ],
    )
    last_ratio = result.rows[-1]["ratio"]
    final = {
        row["tree"]: row["overall_io"]
        for row in result.rows
        if row["ratio"] == last_ratio
    }
    # Update-dominated workloads: the RUM-tree wins on both baselines.
    assert final["RUM-tree(touch)"] < final["R*-tree"]
    assert final["RUM-tree(touch)"] < final["FUR-tree"]
