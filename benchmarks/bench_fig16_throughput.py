"""Figure 16 — throughput under concurrent accesses (RUM-tree vs R*-tree).

Asserts the paper's qualitative findings: comparable throughput on a
query-only workload, and a growing RUM-tree advantage as the update share
rises (memo-based updates lock a single insertion path; top-down updates
exclusively lock their whole multi-path search neighbourhood).
"""

from conftest import archive, run_experiment

from repro.experiments import run_fig16, series_table


def test_fig16_throughput(benchmark):
    result = run_experiment(benchmark, run_fig16)
    archive(
        "fig16_throughput",
        [
            "Figure 16 — throughput (ops/s) vs update percentage",
            series_table(result, "update_pct", "tree", "ops_per_s"),
        ],
    )
    series = {}
    for row in result.rows:
        series.setdefault(row["tree"], {})[row["update_pct"]] = row[
            "ops_per_s"
        ]
    rum = series["RUM-tree(touch)"]
    rstar = series["R*-tree"]

    # Queries only: the two trees are within a factor of each other.
    assert 0.4 < rum[0] / rstar[0] < 2.5

    # Updates only: the RUM-tree clearly out-throughputs the R*-tree.
    assert rum[100] > 1.3 * rstar[100]

    # The relative advantage grows with the update share.
    assert rum[100] / rstar[100] > rum[0] / rstar[0]
